package sql

import (
	"strconv"
	"strings"

	"dbtoaster/internal/types"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SELECT statement (optionally ';'-terminated).
func Parse(src string) (*SelectStmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokSemi {
		p.pos++
	}
	if p.cur().Kind != TokEOF {
		return nil, errf(p.cur().Pos, "unexpected %q after statement", p.cur().Text)
	}
	return stmt, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.Kind != TokKeyword || t.Text != kw {
		return errf(t.Pos, "expected %s, found %q", kw, t.Text)
	}
	p.pos++
	return nil
}

func (p *Parser) acceptKeyword(kw string) bool {
	t := p.cur()
	if t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != kind {
		return t, errf(t.Pos, "expected %s, found %q", kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.cur().Kind != TokComma {
			break
		}
		p.pos++
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if p.cur().Kind != TokComma {
			break
		}
		p.pos++
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			col, ok := e.(*ColumnRef)
			if !ok {
				return nil, errf(p.cur().Pos, "GROUP BY supports column references only, got %s", e)
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if p.cur().Kind != TokComma {
				break
			}
			p.pos++
		}
	}
	if p.acceptKeyword("HAVING") {
		if len(stmt.GroupBy) == 0 {
			return nil, errf(p.cur().Pos, "HAVING requires GROUP BY")
		}
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	for _, kw := range []string{"ORDER", "LIMIT", "DISTINCT"} {
		if p.cur().Kind == TokKeyword && p.cur().Text == kw {
			return nil, errf(p.cur().Pos, "%s is not supported for standing queries", kw)
		}
	}
	return stmt, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t, err := p.expect(TokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.cur().Kind == TokIdent {
		// implicit alias: SELECT sum(x) total
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(TokIdent)
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: t.Text}
	if p.acceptKeyword("AS") {
		a, err := p.expect(TokIdent)
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.Text
	} else if p.cur().Kind == TokIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr      := orExpr
//	orExpr    := andExpr (OR andExpr)*
//	andExpr   := notExpr (AND notExpr)*
//	notExpr   := NOT notExpr | cmpExpr
//	cmpExpr   := addExpr ((=|<>|<|<=|>|>=) addExpr)?
//	addExpr   := mulExpr ((+|-) mulExpr)*
//	mulExpr   := unary ((*|/) unary)*
//	unary     := - unary | primary
//	primary   := literal | aggregate | column | ( expr ) | ( SELECT ... )
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, X: x}, nil
	}
	return p.parseCmp()
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	var op BinOp
	switch p.cur().Kind {
	case TokEq:
		op = OpEq
	case TokNeq:
		op = OpNeq
	case TokLt:
		op = OpLt
	case TokLte:
		op = OpLte
	case TokGt:
		op = OpGt
	case TokGte:
		op = OpGte
	default:
		return l, nil
	}
	p.pos++
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, L: l, R: r}, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.cur().Kind == TokMinus {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNeg, X: x}, nil
	}
	if p.cur().Kind == TokPlus {
		p.pos++
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.pos++
		return parseNumber(t)
	case TokString:
		p.pos++
		return &StringLit{Value: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.pos++
			return &BoolLit{Value: true}, nil
		case "FALSE":
			p.pos++
			return &BoolLit{Value: false}, nil
		case "SUM", "COUNT", "AVG", "MIN", "MAX":
			return p.parseAggregate()
		}
		return nil, errf(t.Pos, "unexpected keyword %s in expression", t.Text)
	case TokIdent:
		return p.parseColumnRef()
	case TokLParen:
		p.pos++
		if p.cur().Kind == TokKeyword && p.cur().Text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Query: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "unexpected %q in expression", t.Text)
}

func (p *Parser) parseAggregate() (Expr, error) {
	t := p.next()
	var fn AggFunc
	switch t.Text {
	case "SUM":
		fn = AggSum
	case "COUNT":
		fn = AggCount
	case "AVG":
		fn = AggAvg
	case "MIN":
		fn = AggMin
	case "MAX":
		fn = AggMax
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.cur().Kind == TokStar {
		p.pos++
		if fn != AggCount {
			return nil, errf(t.Pos, "%s(*) is not valid; only COUNT(*)", fn)
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &AggExpr{Func: fn, Star: true}, nil
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return &AggExpr{Func: fn, Arg: arg}, nil
}

func (p *Parser) parseColumnRef() (Expr, error) {
	t := p.next()
	ref := &ColumnRef{Column: t.Text}
	if p.cur().Kind == TokDot {
		p.pos++
		c, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		ref.Table = t.Text
		ref.Column = c.Text
	}
	return ref, nil
}

func parseNumber(t Token) (Expr, error) {
	if !strings.ContainsAny(t.Text, ".eE") {
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err == nil {
			return &NumberLit{Value: types.NewInt(n)}, nil
		}
	}
	f, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return nil, errf(t.Pos, "bad number %q", t.Text)
	}
	return &NumberLit{Value: types.NewFloat(f)}, nil
}
