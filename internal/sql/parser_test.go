package sql

import (
	"math/rand"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParsePaperQuery(t *testing.T) {
	stmt := mustParse(t, "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C")
	if len(stmt.Items) != 1 || len(stmt.From) != 3 {
		t.Fatalf("shape wrong: %s", stmt)
	}
	agg, ok := stmt.Items[0].Expr.(*AggExpr)
	if !ok || agg.Func != AggSum {
		t.Fatalf("item not SUM: %v", stmt.Items[0].Expr)
	}
	mul, ok := agg.Arg.(*BinaryExpr)
	if !ok || mul.Op != OpMul {
		t.Fatalf("sum arg not product: %v", agg.Arg)
	}
	w, ok := stmt.Where.(*BinaryExpr)
	if !ok || w.Op != OpAnd {
		t.Fatalf("where not AND: %v", stmt.Where)
	}
}

func TestParseRoundTripString(t *testing.T) {
	srcs := []string{
		"SELECT SUM((A * D)) FROM R, S, T WHERE ((R.B = S.B) AND (S.C = T.C))",
		"SELECT C.nation, SUM(price) FROM orders O, customer C WHERE (O.ck = C.ck) GROUP BY C.nation",
	}
	for _, src := range srcs {
		stmt := mustParse(t, src)
		again := mustParse(t, stmt.String())
		if stmt.String() != again.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", stmt, again)
		}
	}
}

func TestParseAliases(t *testing.T) {
	stmt := mustParse(t, "select sum(x.a) as total from R as x, S y")
	if stmt.From[0].Alias != "x" || stmt.From[1].Alias != "y" {
		t.Errorf("aliases = %q %q", stmt.From[0].Alias, stmt.From[1].Alias)
	}
	if stmt.Items[0].Alias != "total" {
		t.Errorf("item alias = %q", stmt.Items[0].Alias)
	}
	stmt = mustParse(t, "select sum(a) total from R")
	if stmt.Items[0].Alias != "total" {
		t.Errorf("implicit alias = %q", stmt.Items[0].Alias)
	}
}

func TestParseGroupBy(t *testing.T) {
	stmt := mustParse(t, "select b, sum(a) from R group by b")
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Column != "b" {
		t.Fatalf("group by = %v", stmt.GroupBy)
	}
	stmt = mustParse(t, "select d.year, c.nation, sum(x) from D d, C c group by d.year, c.nation")
	if len(stmt.GroupBy) != 2 || stmt.GroupBy[1].Table != "c" {
		t.Fatalf("group by = %v", stmt.GroupBy)
	}
	if _, err := Parse("select sum(a) from R group by a+1"); err == nil {
		t.Error("expression in GROUP BY accepted")
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, "select sum(a + b * c) from R")
	add := stmt.Items[0].Expr.(*AggExpr).Arg.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("top op = %v", add.Op)
	}
	if mul, ok := add.R.(*BinaryExpr); !ok || mul.Op != OpMul {
		t.Errorf("b*c should bind tighter: %v", add)
	}

	stmt = mustParse(t, "select sum(a) from R where a = 1 or b = 2 and c = 3")
	or := stmt.Where.(*BinaryExpr)
	if or.Op != OpOr {
		t.Fatalf("top where op = %v", or.Op)
	}
	if and, ok := or.R.(*BinaryExpr); !ok || and.Op != OpAnd {
		t.Errorf("AND should bind tighter than OR: %v", or)
	}

	stmt = mustParse(t, "select sum(a) from R where not a = 1 and b = 2")
	and := stmt.Where.(*BinaryExpr)
	if and.Op != OpAnd {
		t.Fatalf("NOT should bind tighter than AND: %v", stmt.Where)
	}
	if _, ok := and.L.(*UnaryExpr); !ok {
		t.Errorf("left of AND should be NOT: %v", and.L)
	}
}

func TestParseUnary(t *testing.T) {
	stmt := mustParse(t, "select sum(-a) from R where -a < +b")
	if _, ok := stmt.Items[0].Expr.(*AggExpr).Arg.(*UnaryExpr); !ok {
		t.Error("negation not parsed")
	}
	cmp := stmt.Where.(*BinaryExpr)
	if _, ok := cmp.R.(*ColumnRef); !ok {
		t.Error("unary plus should vanish")
	}
}

func TestParseCountStar(t *testing.T) {
	stmt := mustParse(t, "select count(*) from R")
	agg := stmt.Items[0].Expr.(*AggExpr)
	if agg.Func != AggCount || !agg.Star {
		t.Errorf("count(*) = %v", agg)
	}
	if _, err := Parse("select sum(*) from R"); err == nil {
		t.Error("sum(*) accepted")
	}
}

func TestParseSubquery(t *testing.T) {
	stmt := mustParse(t, "select sum(a) from R where b > (select sum(c) from S)")
	cmp := stmt.Where.(*BinaryExpr)
	sub, ok := cmp.R.(*SubqueryExpr)
	if !ok {
		t.Fatalf("subquery not parsed: %v", cmp.R)
	}
	if len(sub.Query.From) != 1 || sub.Query.From[0].Name != "S" {
		t.Errorf("subquery from = %v", sub.Query.From)
	}
}

func TestParseLiterals(t *testing.T) {
	stmt := mustParse(t, "select sum(a) from R where s = 'x''y' and f > 1.5 and t = true and n <> 3")
	if !strings.Contains(stmt.String(), "'x''y'") {
		t.Errorf("string literal lost: %s", stmt)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select from R",
		"select sum(a from R",
		"select sum(a) R",
		"select sum(a) from",
		"select sum(a) from R where",
		"select sum(a) from R group a",
		"select sum(a) from R; extra",
		"select sum(a) from R having sum(a) > 1",
		"select sum(a) from R order by a",
		"select sum(a) from R limit 1",
		"select distinct a from R",
		"select sum(a) from R where (select sum(b) from S",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// TestParsePrintParseFixpoint: for randomly generated query texts, parsing
// the printed form of a parse yields the same printed form (print∘parse is
// a fixpoint), via testing/quick-style iteration.
func TestParsePrintParseFixpoint(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		src := randomSQL(r)
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("generated query does not parse: %q: %v", src, err)
		}
		printed := stmt.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not parse: %q: %v", printed, err)
		}
		if again.String() != printed {
			t.Fatalf("not a fixpoint:\n  %s\n  %s", printed, again.String())
		}
	}
}

// randomSQL builds a random (syntactically valid) aggregate query.
func randomSQL(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("select ")
	aggs := []string{"sum(a)", "count(*)", "avg(a + b)", "min(a)", "max(2 * a)", "sum(a * b - 3)"}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(aggs[r.Intn(len(aggs))])
	}
	b.WriteString(" from R")
	if r.Intn(2) == 0 {
		b.WriteString(", S s2")
	}
	if r.Intn(2) == 0 {
		b.WriteString(" where ")
		preds := []string{"a = 1", "b <> 2.5", "a < b", "not a >= 3", "c = 'x''y'", "a = 1 or b = 2"}
		m := 1 + r.Intn(3)
		for i := 0; i < m; i++ {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(preds[r.Intn(len(preds))])
		}
	}
	return b.String()
}

func TestParseNumberKinds(t *testing.T) {
	stmt := mustParse(t, "select sum(a) from R where a = 2 and b = 2.5 and c = 1e3")
	var nums []*NumberLit
	stmt.WalkExprs(func(e Expr) bool {
		if n, ok := e.(*NumberLit); ok {
			nums = append(nums, n)
		}
		return true
	})
	if len(nums) != 3 {
		t.Fatalf("found %d literals", len(nums))
	}
	if nums[0].Value.Kind().String() != "int" {
		t.Errorf("2 lexed as %v", nums[0].Value.Kind())
	}
	if nums[1].Value.Kind().String() != "float" || nums[2].Value.Kind().String() != "float" {
		t.Errorf("float literals mis-kinded: %v %v", nums[1].Value.Kind(), nums[2].Value.Kind())
	}
}
