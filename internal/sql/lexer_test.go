package sql

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("select sum(a*d) from R, S where r.b = s.b;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokKeyword, TokKeyword, TokLParen, TokIdent, TokStar, TokIdent,
		TokRParen, TokKeyword, TokIdent, TokComma, TokIdent, TokKeyword,
		TokIdent, TokDot, TokIdent, TokEq, TokIdent, TokDot, TokIdent,
		TokSemi, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[0].Text != "SELECT" {
		t.Errorf("keyword not upper-cased: %q", toks[0].Text)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("<= >= <> != < > = + - / *")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokLte, TokGte, TokNeq, TokNeq, TokLt, TokGt, TokEq,
		TokPlus, TokMinus, TokSlash, TokStar, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"3.14":   "3.14",
		"1e9":    "1e9",
		"2.5E-3": "2.5E-3",
		"7e+2":   "7e+2",
		".5":     ".5",
		"10.":    "10.",
		"1.2.3":  "1.2", // second dot terminates the number
		"3units": "3",   // ident chars terminate
		"1e":     "1",   // bare exponent marker is not consumed
		"0x10":   "0",   // no hex support: x starts an identifier
		"5-3":    "5",
	}
	for src, want := range cases {
		toks, err := Lex(src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", src, err)
		}
		if toks[0].Kind != TokNumber || toks[0].Text != want {
			t.Errorf("Lex(%q) first token = %v %q, want number %q", src, toks[0].Kind, toks[0].Text, want)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex("'hello' 'it''s' ''")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "hello" || toks[1].Text != "it's" || toks[2].Text != "" {
		t.Errorf("string texts = %q %q %q", toks[0].Text, toks[1].Text, toks[2].Text)
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string not rejected")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("select -- comment to end of line\n 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Kind != TokNumber {
		t.Errorf("comment not skipped: %v", toks)
	}
	// A lone minus is still an operator.
	toks, err = Lex("a - b")
	if err != nil || len(toks) != 4 || toks[1].Kind != TokMinus {
		t.Errorf("minus mis-lexed: %v %v", toks, err)
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	for _, src := range []string{"@", "#", "a ! b"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("ab  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 4 {
		t.Errorf("positions = %d %d", toks[0].Pos, toks[1].Pos)
	}
}
