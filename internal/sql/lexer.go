package sql

import (
	"strings"
	"unicode"
)

// Lexer turns SQL source text into a token stream.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Lex tokenizes the whole input. It fails on unterminated strings and
// characters outside the supported alphabet.
func Lex(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		return l.lexIdent(start), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start), nil
	case c == '.':
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber(start), nil
		}
		l.pos++
		return Token{Kind: TokDot, Text: ".", Pos: start}, nil
	case c == '\'':
		return l.lexString(start)
	}
	l.pos++
	single := func(k TokenKind) Token { return Token{Kind: k, Text: string(c), Pos: start} }
	switch c {
	case ',':
		return single(TokComma), nil
	case '(':
		return single(TokLParen), nil
	case ')':
		return single(TokRParen), nil
	case '*':
		return single(TokStar), nil
	case '+':
		return single(TokPlus), nil
	case '-':
		return single(TokMinus), nil
	case '/':
		return single(TokSlash), nil
	case ';':
		return single(TokSemi), nil
	case '=':
		return single(TokEq), nil
	case '!':
		if l.peek() == '=' {
			l.pos++
			return Token{Kind: TokNeq, Text: "!=", Pos: start}, nil
		}
		return Token{}, errf(start, "unexpected character %q", c)
	case '<':
		switch l.peek() {
		case '=':
			l.pos++
			return Token{Kind: TokLte, Text: "<=", Pos: start}, nil
		case '>':
			l.pos++
			return Token{Kind: TokNeq, Text: "<>", Pos: start}, nil
		}
		return Token{Kind: TokLt, Text: "<", Pos: start}, nil
	case '>':
		if l.peek() == '=' {
			l.pos++
			return Token{Kind: TokGte, Text: ">=", Pos: start}, nil
		}
		return Token{Kind: TokGt, Text: ">", Pos: start}, nil
	}
	return Token{}, errf(start, "unexpected character %q", c)
}

func (l *Lexer) peek() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *Lexer) lexIdent(start int) Token {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: start}
	}
	return Token{Kind: TokIdent, Text: text, Pos: start}
}

func (l *Lexer) lexNumber(start int) Token {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			if isDigit(next) || ((next == '+' || next == '-') && l.pos+2 < len(l.src) && isDigit(l.src[l.pos+2])) {
				l.pos += 2
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
		}
		break
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, errf(start, "unterminated string literal")
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || isDigit(c) || unicode.IsLetter(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
