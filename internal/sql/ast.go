package sql

import (
	"fmt"
	"strings"

	"dbtoaster/internal/types"
)

// SelectStmt is a parsed SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   Expr // nil when absent
	GroupBy []*ColumnRef
	Having  Expr // nil when absent; only valid with GROUP BY
}

// SelectItem is one projection in the SELECT list. Star (SELECT *) is only
// valid inside EXISTS subqueries, where the projection is irrelevant.
type SelectItem struct {
	Expr  Expr
	Alias string // "" when no AS clause
	Star  bool   // SELECT *; Expr is nil
}

// JoinType classifies how a FROM entry combines with the preceding ones.
type JoinType int

// Join types. The FROM list is a left-deep chain: entry i with JoinInner or
// JoinLeft joins table i against the join of entries 0..i-1 using its On
// condition; JoinNone is a plain comma (cross) item.
const (
	JoinNone JoinType = iota
	JoinInner
	JoinLeft
)

// TableRef names a base relation in FROM, optionally aliased, with the join
// type and ON condition linking it to the tables before it.
type TableRef struct {
	Name  string
	Alias string // defaults to Name during analysis

	Join JoinType
	On   Expr // non-nil iff Join != JoinNone
}

// Binding returns the name the table is referred to by in the query.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// Expr is a SQL expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef is a (possibly qualified) column reference. The analyzer fills
// in the resolution fields.
type ColumnRef struct {
	Table  string // qualifier as written, "" when unqualified
	Column string

	// Resolved by Analyze:
	TableIdx int        // index into the owning query's FROM list
	ColIdx   int        // column position within the relation
	Type     types.Kind // column type
	Outer    int        // scope distance: 0 = this query, 1 = parent, ...
}

// NumberLit is an integer or float literal.
type NumberLit struct{ Value types.Value }

// StringLit is a string literal.
type StringLit struct{ Value string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Value bool }

// BinaryExpr is an arithmetic, comparison, or boolean operation.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
}

// UnaryExpr is negation (-x) or NOT x.
type UnaryExpr struct {
	Op UnOp
	X  Expr
}

// AggExpr is an aggregate call: SUM/COUNT/AVG/MIN/MAX.
type AggExpr struct {
	Func AggFunc
	Arg  Expr // nil for COUNT(*)
	Star bool
}

// SubqueryExpr is a scalar subquery (must be a single-aggregate query).
type SubqueryExpr struct{ Query *SelectStmt }

// ExistsExpr is an EXISTS (SELECT ...) predicate. NOT EXISTS parses as
// UnaryExpr{OpNot, ExistsExpr}.
type ExistsExpr struct{ Query *SelectStmt }

// InExpr is a membership predicate over a subquery's single projected
// column: Needle IN (SELECT col FROM ...). NOT IN parses as
// UnaryExpr{OpNot, InExpr}; value lists (x IN (1,2,3)) are desugared to
// equality disjunctions by the parser and never reach the AST.
type InExpr struct {
	Needle Expr
	Query  *SelectStmt
}

func (*ColumnRef) exprNode()    {}
func (*NumberLit) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*BoolLit) exprNode()      {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*AggExpr) exprNode()      {}
func (*SubqueryExpr) exprNode() {}
func (*ExistsExpr) exprNode()   {}
func (*InExpr) exprNode()       {}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators, grouped: arithmetic, comparison, boolean.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
	OpAnd
	OpOr
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNeq: "<>", OpLt: "<", OpLte: "<=", OpGt: ">", OpGte: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String returns the SQL spelling of the operator.
func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether op compares two scalars to a boolean.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGte }

// IsArith reports whether op is +, -, *, /.
func (op BinOp) IsArith() bool { return op <= OpDiv }

// IsBool reports whether op is AND/OR.
func (op BinOp) IsBool() bool { return op == OpAnd || op == OpOr }

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota
	OpNot
)

// String returns the SQL spelling of the operator.
func (op UnOp) String() string {
	if op == OpNeg {
		return "-"
	}
	return "NOT"
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggAvg
	AggMin
	AggMax
)

var aggNames = [...]string{AggSum: "SUM", AggCount: "COUNT", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX"}

// String returns the SQL spelling of the aggregate.
func (f AggFunc) String() string { return aggNames[f] }

// --- Printing ---

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

func (n *NumberLit) String() string { return n.Value.String() }
func (s *StringLit) String() string { return "'" + strings.ReplaceAll(s.Value, "'", "''") + "'" }

func (b *BoolLit) String() string {
	if b.Value {
		return "TRUE"
	}
	return "FALSE"
}

func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func (u *UnaryExpr) String() string {
	if u.Op == OpNot {
		return fmt.Sprintf("NOT (%s)", u.X)
	}
	return fmt.Sprintf("-(%s)", u.X)
}

func (a *AggExpr) String() string {
	if a.Star {
		return a.Func.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}

func (s *SubqueryExpr) String() string { return "(" + s.Query.String() + ")" }

func (e *ExistsExpr) String() string { return "EXISTS (" + e.Query.String() + ")" }

func (e *InExpr) String() string {
	return fmt.Sprintf("%s IN (%s)", e.Needle, e.Query)
}

// String renders the statement back to SQL (normalized spacing).
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			switch t.Join {
			case JoinInner:
				b.WriteString(" JOIN ")
			case JoinLeft:
				b.WriteString(" LEFT OUTER JOIN ")
			default:
				b.WriteString(", ")
			}
		}
		b.WriteString(t.Name)
		if t.Alias != "" && t.Alias != t.Name {
			b.WriteString(" " + t.Alias)
		}
		if t.On != nil {
			b.WriteString(" ON " + t.On.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	return b.String()
}

// WalkExprs calls fn for every expression node in the statement, including
// select items, WHERE, GROUP BY, and (not recursing into) subqueries. fn
// returning false stops descent into that node's children.
func (s *SelectStmt) WalkExprs(fn func(Expr) bool) {
	for _, it := range s.Items {
		walkExpr(it.Expr, fn)
	}
	for _, t := range s.From {
		if t.On != nil {
			walkExpr(t.On, fn)
		}
	}
	if s.Where != nil {
		walkExpr(s.Where, fn)
	}
	for _, g := range s.GroupBy {
		walkExpr(g, fn)
	}
	if s.Having != nil {
		walkExpr(s.Having, fn)
	}
}

func walkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch e := e.(type) {
	case *BinaryExpr:
		walkExpr(e.L, fn)
		walkExpr(e.R, fn)
	case *UnaryExpr:
		walkExpr(e.X, fn)
	case *AggExpr:
		walkExpr(e.Arg, fn)
	case *InExpr:
		// The needle belongs to the enclosing query; the subquery is not
		// recursed into (same convention as SubqueryExpr).
		walkExpr(e.Needle, fn)
	}
}
