// Package sql implements the SQL front end: a lexer, a recursive-descent
// parser producing an AST, and a semantic analyzer that resolves names
// against a schema catalog and type-checks expressions.
//
// The supported subset is the one DBToaster compiles: SELECT lists with
// SUM/COUNT/AVG/MIN/MAX aggregates and arithmetic, FROM with aliases,
// WHERE with boolean combinations of comparisons, GROUP BY, and scalar
// aggregate subqueries.
package sql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokComma
	TokDot
	TokLParen
	TokRParen
	TokStar
	TokPlus
	TokMinus
	TokSlash
	TokEq
	TokNeq
	TokLt
	TokLte
	TokGt
	TokGte
	TokSemi
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokString: "string", TokKeyword: "keyword", TokComma: ",", TokDot: ".",
	TokLParen: "(", TokRParen: ")", TokStar: "*", TokPlus: "+",
	TokMinus: "-", TokSlash: "/", TokEq: "=", TokNeq: "<>", TokLt: "<",
	TokLte: "<=", TokGt: ">", TokGte: ">=", TokSemi: ";",
}

// String returns a human-readable token kind name.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // raw text; keywords are upper-cased
	Pos  int
}

// Keywords recognized by the lexer (matched case-insensitively).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AS": true, "AND": true, "OR": true, "NOT": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"CREATE": true, "TABLE": true, "STREAM": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "FLOAT": true,
	"DOUBLE": true, "DECIMAL": true, "VARCHAR": true, "CHAR": true,
	"TEXT": true, "BOOL": true, "BOOLEAN": true,
	"TRUE": true, "FALSE": true, "NULL": true,
	"HAVING": true, "DISTINCT": true, "ORDER": true, "LIMIT": true,
	"EXISTS": true, "IN": true, "JOIN": true, "ON": true, "LEFT": true,
	"OUTER": true, "INNER": true, "RIGHT": true, "FULL": true, "CROSS": true,
}

// Error is a front-end error carrying the byte offset where it occurred.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: %s (at offset %d)", e.Msg, e.Pos) }

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
