package sql

import (
	"strings"
	"testing"

	"dbtoaster/internal/schema"
	"dbtoaster/internal/types"
)

func testCatalog() *schema.Catalog {
	return schema.NewCatalog(
		schema.NewRelation("R", "A:int", "B:int"),
		schema.NewRelation("S", "B:int", "C:int"),
		schema.NewRelation("T", "C:int", "D:int"),
		schema.NewRelation("bids", "price:float", "volume:float"),
		schema.NewRelation("orders", "ck:int", "price:float", "nation:string"),
	)
}

func analyze(t *testing.T, src string) *Analyzed {
	t.Helper()
	stmt := mustParse(t, src)
	a, err := Analyze(stmt, testCatalog())
	if err != nil {
		t.Fatalf("Analyze(%q): %v", src, err)
	}
	return a
}

func TestAnalyzePaperQuery(t *testing.T) {
	a := analyze(t, "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C")
	if len(a.Relations) != 3 || a.Relations[0].Name != "R" {
		t.Fatalf("relations = %v", a.Relations)
	}
	// Check the sum argument columns resolved to the right tables.
	mul := a.Stmt.Items[0].Expr.(*AggExpr).Arg.(*BinaryExpr)
	ca, cd := mul.L.(*ColumnRef), mul.R.(*ColumnRef)
	if ca.TableIdx != 0 || ca.ColIdx != 0 {
		t.Errorf("A resolved to table %d col %d", ca.TableIdx, ca.ColIdx)
	}
	if cd.TableIdx != 2 || cd.ColIdx != 1 {
		t.Errorf("D resolved to table %d col %d", cd.TableIdx, cd.ColIdx)
	}
	if !a.AggItems[0] {
		t.Error("item not marked aggregate")
	}
}

func TestAnalyzeAmbiguity(t *testing.T) {
	// B exists in both R and S; unqualified use is ambiguous.
	stmt := mustParse(t, "select sum(B) from R, S")
	if _, err := Analyze(stmt, testCatalog()); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column not detected: %v", err)
	}
	// Qualified is fine.
	analyze(t, "select sum(R.B) from R, S")
}

func TestAnalyzeSelfJoinAliases(t *testing.T) {
	a := analyze(t, "select sum(x.A * y.A) from R x, R y where x.B = y.B")
	mul := a.Stmt.Items[0].Expr.(*AggExpr).Arg.(*BinaryExpr)
	if mul.L.(*ColumnRef).TableIdx != 0 || mul.R.(*ColumnRef).TableIdx != 1 {
		t.Error("self-join aliases resolved to the same table")
	}
	stmt := mustParse(t, "select sum(A) from R x, R x")
	if _, err := Analyze(stmt, testCatalog()); err == nil {
		t.Error("duplicate binding accepted")
	}
}

func TestAnalyzeGroupBy(t *testing.T) {
	a := analyze(t, "select nation, sum(price) from orders group by nation")
	if a.AggItems[0] || !a.AggItems[1] {
		t.Errorf("AggItems = %v", a.AggItems)
	}
	// Non-aggregated, non-grouped column must be rejected.
	stmt := mustParse(t, "select price, sum(price) from orders group by nation")
	if _, err := Analyze(stmt, testCatalog()); err == nil {
		t.Error("bare non-grouped column accepted")
	}
	// Bare column inside an aggregate item expression must be rejected too.
	stmt = mustParse(t, "select price + sum(price) from orders")
	if _, err := Analyze(stmt, testCatalog()); err == nil {
		t.Error("bare column mixed into aggregate item accepted")
	}
	// Grouped column mixed into an aggregate expression is fine.
	analyze(t, "select ck + sum(price) from orders group by ck")
}

func TestAnalyzeTypeChecking(t *testing.T) {
	bad := []string{
		"select sum(nation) from orders",            // sum over string
		"select sum(price) from orders where price", // non-bool where
		"select sum(price) from orders where nation = 1",
		"select sum(price) from orders where nation + 1 > 2",
		"select sum(price) from orders where not price",
		"select sum(-nation) from orders",
		"select sum(price) from orders where sum(price) > 1", // aggregate in WHERE
	}
	for _, src := range bad {
		stmt := mustParse(t, src)
		if _, err := Analyze(stmt, testCatalog()); err == nil {
			t.Errorf("Analyze(%q) should fail", src)
		}
	}
	// min/max over strings are fine.
	analyze(t, "select min(nation), max(nation) from orders")
	// count over anything is fine.
	analyze(t, "select count(nation) from orders")
}

func TestAnalyzeUnknowns(t *testing.T) {
	for _, src := range []string{
		"select sum(a) from Nope",
		"select sum(nope) from R",
		"select sum(R.nope) from R",
		"select sum(Z.A) from R",
	} {
		stmt := mustParse(t, src)
		if _, err := Analyze(stmt, testCatalog()); err == nil {
			t.Errorf("Analyze(%q) should fail", src)
		}
	}
}

func TestAnalyzeSubqueries(t *testing.T) {
	// Uncorrelated scalar subquery.
	a := analyze(t, "select sum(price) from orders where price > (select sum(volume) from bids)")
	cmp := a.Stmt.Where.(*BinaryExpr)
	if _, ok := cmp.R.(*SubqueryExpr); !ok {
		t.Fatal("subquery lost")
	}
	// Correlated subquery: b2.price > b1.price resolves b1 to the outer scope.
	a = analyze(t, `select sum(b1.price * b1.volume) from bids b1
		where 0.25 > (select sum(b2.volume) from bids b2 where b2.price > b1.price)`)
	sub := a.Stmt.Where.(*BinaryExpr).R.(*SubqueryExpr)
	inner := sub.Query.Where.(*BinaryExpr)
	outerRef := inner.R.(*ColumnRef)
	if outerRef.Outer != 1 {
		t.Errorf("correlated ref Outer = %d, want 1", outerRef.Outer)
	}
	if inner.L.(*ColumnRef).Outer != 0 {
		t.Error("inner ref marked outer")
	}
	// Subquery must be scalar aggregate.
	stmt := mustParse(t, "select sum(price) from orders where price > (select price, sum(price) from orders group by price)")
	if _, err := Analyze(stmt, testCatalog()); err == nil {
		t.Error("non-scalar subquery accepted")
	}
}

func TestTypeOf(t *testing.T) {
	a := analyze(t, "select count(*), avg(price), min(nation), sum(ck), sum(price) from orders")
	wants := []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindInt, types.KindFloat}
	for i, w := range wants {
		if got := TypeOf(a.Stmt.Items[i].Expr); got != w {
			t.Errorf("item %d type = %v, want %v", i, got, w)
		}
	}
	// Division types.
	a = analyze(t, "select sum(ck/ck), sum(price/ck) from orders")
	if TypeOf(a.Stmt.Items[0].Expr) != types.KindInt {
		t.Error("int/int should be int")
	}
	if TypeOf(a.Stmt.Items[1].Expr) != types.KindFloat {
		t.Error("float/int should be float")
	}
}

func TestAnalyzeNestedAggregateRejected(t *testing.T) {
	stmt := mustParse(t, "select sum(sum(a)) from R")
	if _, err := Analyze(stmt, testCatalog()); err == nil {
		t.Error("nested aggregate accepted")
	}
}
