package sql

import (
	"fmt"
	"strings"

	"dbtoaster/internal/schema"
	"dbtoaster/internal/types"
)

// Analyzed is a semantically-checked SELECT with its resolved catalog.
type Analyzed struct {
	Stmt    *SelectStmt
	Catalog *schema.Catalog
	// Relations holds, per FROM entry, the resolved base relation.
	Relations []*schema.Relation
	// AggItems marks which select items are aggregate expressions (vs
	// group-by column projections).
	AggItems []bool
}

// Analyze resolves names in stmt against the catalog and type-checks it.
// On success every ColumnRef in the tree has its resolution fields filled.
func Analyze(stmt *SelectStmt, cat *schema.Catalog) (*Analyzed, error) {
	a := &analyzer{cat: cat}
	if err := a.selectStmt(stmt, modeTop); err != nil {
		return nil, err
	}
	res := &Analyzed{Stmt: stmt, Catalog: cat}
	for _, t := range stmt.From {
		rel, _ := cat.Relation(t.Name)
		res.Relations = append(res.Relations, rel)
	}
	for _, it := range stmt.Items {
		res.AggItems = append(res.AggItems, containsAggregate(it.Expr))
	}
	return res, nil
}

// queryMode records what role a SELECT plays: the standing query itself, a
// scalar aggregate subquery, or the body of an EXISTS / IN predicate.
type queryMode int

const (
	modeTop queryMode = iota
	modeScalar
	modeExists
	modeIn
)

func (m queryMode) String() string {
	switch m {
	case modeScalar:
		return "scalar subquery"
	case modeExists:
		return "EXISTS subquery"
	case modeIn:
		return "IN subquery"
	default:
		return "query"
	}
}

// scope is one level of FROM bindings; inner subqueries see outer scopes.
type scope struct {
	stmt *SelectStmt
	rels []*schema.Relation
	mode queryMode
}

type analyzer struct {
	cat    *schema.Catalog
	scopes []*scope
}

func (a *analyzer) curMode() queryMode {
	if len(a.scopes) == 0 {
		return modeTop
	}
	return a.scopes[len(a.scopes)-1].mode
}

func (a *analyzer) selectStmt(stmt *SelectStmt, mode queryMode) error {
	if len(stmt.From) == 0 {
		return fmt.Errorf("sql: query has no FROM clause")
	}
	if mode == modeExists || mode == modeIn {
		if len(stmt.From) != 1 {
			return fmt.Errorf("sql: %s supports exactly one FROM relation, got %d", mode, len(stmt.From))
		}
		if len(stmt.GroupBy) > 0 {
			return fmt.Errorf("sql: GROUP BY is not supported in an %s", mode)
		}
		if stmt.Having != nil {
			return fmt.Errorf("sql: HAVING is not supported in an %s", mode)
		}
		if len(stmt.Items) != 1 {
			return fmt.Errorf("sql: %s must project exactly one item", mode)
		}
	}
	sc := &scope{stmt: stmt, mode: mode}
	seen := map[string]bool{}
	for _, t := range stmt.From {
		rel, ok := a.cat.Relation(t.Name)
		if !ok {
			return fmt.Errorf("sql: unknown relation %q", t.Name)
		}
		binding := strings.ToLower(t.Binding())
		if seen[binding] {
			return fmt.Errorf("sql: duplicate table binding %q", t.Binding())
		}
		seen[binding] = true
		sc.rels = append(sc.rels, rel)
	}
	a.scopes = append(a.scopes, sc)
	defer func() { a.scopes = a.scopes[:len(a.scopes)-1] }()

	for i := range stmt.From {
		if err := a.checkJoin(stmt, i); err != nil {
			return err
		}
	}
	hasLeftJoin := false
	for _, t := range stmt.From {
		if t.Join == JoinLeft {
			hasLeftJoin = true
		}
	}
	for _, g := range stmt.GroupBy {
		if err := a.resolveColumn(g); err != nil {
			return err
		}
		if g.Outer > 0 {
			return fmt.Errorf("sql: GROUP BY column %s must belong to this query's FROM", g)
		}
		if stmt.From[g.TableIdx].Join == JoinLeft {
			return fmt.Errorf("sql: GROUP BY column %s comes from the nullable side of a LEFT OUTER JOIN, which is not supported", g)
		}
	}
	for i := range stmt.Items {
		it := &stmt.Items[i]
		if it.Star {
			if mode != modeExists {
				return fmt.Errorf("sql: SELECT * is only supported inside EXISTS subqueries")
			}
			continue
		}
		if err := a.expr(it.Expr, mode != modeExists && mode != modeIn); err != nil {
			return err
		}
		if e := findExistsIn(it.Expr); e != nil {
			return fmt.Errorf("sql: %s is only supported in WHERE, not in the SELECT list", e)
		}
		if hasLeftJoin {
			if f, ok := findMinMax(it.Expr); ok {
				return fmt.Errorf("sql: %s with LEFT OUTER JOIN is not supported", f)
			}
		}
		switch {
		case containsAggregate(it.Expr):
			if err := checkNoBareColumns(it.Expr, stmt); err != nil {
				return err
			}
		case !containsColumn(it.Expr):
			// Pure constant item: always valid.
		case mode == modeExists || mode == modeIn:
			// The projection of an EXISTS/IN body needs no grouping: EXISTS
			// ignores it, IN compares against it per row.
		default:
			// Non-aggregate item with columns must be a group-by column.
			col, ok := it.Expr.(*ColumnRef)
			if !ok || !a.inGroupBy(stmt, col) {
				return fmt.Errorf("sql: select item %s is neither aggregated nor a GROUP BY column", it.Expr)
			}
		}
	}
	if stmt.Where != nil {
		if err := a.expr(stmt.Where, false); err != nil {
			return err
		}
		if containsAggregate(stmt.Where) {
			return fmt.Errorf("sql: aggregates in WHERE must appear inside a subquery")
		}
		if k := a.typeOf(stmt.Where); k != types.KindBool {
			return fmt.Errorf("sql: WHERE clause has type %s, want bool", k)
		}
	}
	if stmt.Having != nil {
		// HAVING filters groups: aggregates allowed, bare columns must be
		// grouped, like select items.
		if err := a.expr(stmt.Having, true); err != nil {
			return err
		}
		if e := findExistsIn(stmt.Having); e != nil {
			return fmt.Errorf("sql: %s is only supported in WHERE, not in HAVING", e)
		}
		if hasLeftJoin {
			if f, ok := findMinMax(stmt.Having); ok {
				return fmt.Errorf("sql: %s with LEFT OUTER JOIN is not supported", f)
			}
		}
		if err := checkNoBareColumns(stmt.Having, stmt); err != nil {
			return err
		}
		if k := a.typeOf(stmt.Having); k != types.KindBool {
			return fmt.Errorf("sql: HAVING clause has type %s, want bool", k)
		}
	}
	return nil
}

// checkJoin validates the ON condition of FROM entry i: boolean, free of
// aggregates and subqueries, and referencing only tables joined so far.
func (a *analyzer) checkJoin(stmt *SelectStmt, i int) error {
	t := stmt.From[i]
	if t.Join == JoinNone {
		if t.On != nil {
			return fmt.Errorf("sql: ON condition without a JOIN on %s", t.Binding())
		}
		return nil
	}
	if i == 0 {
		return fmt.Errorf("sql: first FROM entry %s cannot be a JOIN target", t.Binding())
	}
	if err := a.expr(t.On, false); err != nil {
		return err
	}
	if containsAggregate(t.On) {
		return fmt.Errorf("sql: aggregates are not allowed in the ON condition of %s", t.Binding())
	}
	if e := findSubquery(t.On); e != nil {
		return fmt.Errorf("sql: subqueries are not allowed in ON conditions (found %s)", e)
	}
	if k := a.typeOf(t.On); k != types.KindBool {
		return fmt.Errorf("sql: ON condition of %s has type %s, want bool", t.Binding(), k)
	}
	var bad *ColumnRef
	walkExpr(t.On, func(e Expr) bool {
		c, ok := e.(*ColumnRef)
		if !ok {
			return true
		}
		if c.Outer > 0 || c.TableIdx > i {
			if bad == nil {
				bad = c
			}
		}
		return true
	})
	if bad != nil {
		return fmt.Errorf("sql: ON condition of %s references %s, which is not among the tables joined so far", t.Binding(), bad)
	}
	return nil
}

// findExistsIn returns the first EXISTS/IN predicate in e, if any.
func findExistsIn(e Expr) Expr {
	var found Expr
	walkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *ExistsExpr, *InExpr:
			if found == nil {
				found = x
			}
			return false
		}
		return true
	})
	return found
}

// findSubquery returns the first subquery node of any flavor in e.
func findSubquery(e Expr) Expr {
	var found Expr
	walkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *ExistsExpr, *InExpr, *SubqueryExpr:
			if found == nil {
				found = x
			}
			return false
		}
		return true
	})
	return found
}

// findMinMax returns the first MIN/MAX aggregate in e.
func findMinMax(e Expr) (AggFunc, bool) {
	var f AggFunc
	found := false
	walkExpr(e, func(x Expr) bool {
		if a, ok := x.(*AggExpr); ok && (a.Func == AggMin || a.Func == AggMax) && !found {
			f, found = a.Func, true
		}
		return true
	})
	return f, found
}

func (a *analyzer) inGroupBy(stmt *SelectStmt, col *ColumnRef) bool {
	for _, g := range stmt.GroupBy {
		if g.TableIdx == col.TableIdx && g.ColIdx == col.ColIdx && col.Outer == 0 {
			return true
		}
	}
	return false
}

// checkNoBareColumns rejects column refs of the current scope outside
// aggregate arguments unless they are group-by columns.
func checkNoBareColumns(e Expr, stmt *SelectStmt) error {
	switch e := e.(type) {
	case *ColumnRef:
		if e.Outer > 0 {
			return nil
		}
		for _, g := range stmt.GroupBy {
			if g.TableIdx == e.TableIdx && g.ColIdx == e.ColIdx {
				return nil
			}
		}
		return fmt.Errorf("sql: column %s used outside an aggregate without GROUP BY", e)
	case *BinaryExpr:
		if err := checkNoBareColumns(e.L, stmt); err != nil {
			return err
		}
		return checkNoBareColumns(e.R, stmt)
	case *UnaryExpr:
		return checkNoBareColumns(e.X, stmt)
	case *AggExpr, *SubqueryExpr, *NumberLit, *StringLit, *BoolLit:
		return nil
	}
	return nil
}

func (a *analyzer) expr(e Expr, allowAgg bool) error {
	switch e := e.(type) {
	case *ColumnRef:
		return a.resolveColumn(e)
	case *NumberLit, *StringLit, *BoolLit:
		return nil
	case *BinaryExpr:
		if err := a.expr(e.L, allowAgg); err != nil {
			return err
		}
		if err := a.expr(e.R, allowAgg); err != nil {
			return err
		}
		return a.checkBinaryTypes(e)
	case *UnaryExpr:
		if err := a.expr(e.X, allowAgg); err != nil {
			return err
		}
		k := a.typeOf(e.X)
		if e.Op == OpNeg && !k.Numeric() {
			return fmt.Errorf("sql: cannot negate %s value %s", k, e.X)
		}
		if e.Op == OpNot && k != types.KindBool {
			return fmt.Errorf("sql: NOT applied to %s value %s", k, e.X)
		}
		return nil
	case *AggExpr:
		if !allowAgg {
			return fmt.Errorf("sql: aggregate %s not allowed here", e)
		}
		if e.Star {
			return nil
		}
		if containsAggregate(e.Arg) {
			return fmt.Errorf("sql: nested aggregate in %s", e)
		}
		if err := a.expr(e.Arg, false); err != nil {
			return err
		}
		if k := a.typeOf(e.Arg); !k.Numeric() && e.Func != AggMin && e.Func != AggMax && e.Func != AggCount {
			return fmt.Errorf("sql: %s over non-numeric %s argument %s", e.Func, k, e.Arg)
		}
		return nil
	case *SubqueryExpr:
		if m := a.curMode(); m == modeExists || m == modeIn {
			return fmt.Errorf("sql: nested subqueries inside an %s are not supported", m)
		}
		if err := a.selectStmt(e.Query, modeScalar); err != nil {
			return err
		}
		if len(e.Query.Items) != 1 || len(e.Query.GroupBy) != 0 || !containsAggregate(e.Query.Items[0].Expr) {
			return fmt.Errorf("sql: subquery must be a single-aggregate scalar query: %s", e.Query)
		}
		return nil
	case *ExistsExpr:
		if m := a.curMode(); m == modeExists || m == modeIn {
			return fmt.Errorf("sql: nested subqueries inside an %s are not supported", m)
		}
		return a.selectStmt(e.Query, modeExists)
	case *InExpr:
		if m := a.curMode(); m == modeExists || m == modeIn {
			return fmt.Errorf("sql: nested subqueries inside an %s are not supported", m)
		}
		if err := a.expr(e.Needle, false); err != nil {
			return err
		}
		if containsAggregate(e.Needle) {
			return fmt.Errorf("sql: aggregate on the left of IN is not supported: %s", e)
		}
		if err := a.selectStmt(e.Query, modeIn); err != nil {
			return err
		}
		nk, ik := a.typeOf(e.Needle), TypeOf(e.Query.Items[0].Expr)
		comparable := nk == ik || (nk.Numeric() && ik.Numeric())
		if !comparable {
			return fmt.Errorf("sql: cannot compare %s with %s in %s", nk, ik, e)
		}
		return nil
	}
	return fmt.Errorf("sql: unknown expression node %T", e)
}

func (a *analyzer) checkBinaryTypes(e *BinaryExpr) error {
	lk, rk := a.typeOf(e.L), a.typeOf(e.R)
	switch {
	case e.Op.IsArith():
		if !lk.Numeric() || !rk.Numeric() {
			return fmt.Errorf("sql: arithmetic %s on %s and %s", e.Op, lk, rk)
		}
	case e.Op.IsComparison():
		comparable := lk == rk || (lk.Numeric() && rk.Numeric())
		if !comparable {
			return fmt.Errorf("sql: cannot compare %s with %s in %s", lk, rk, e)
		}
	case e.Op.IsBool():
		if lk != types.KindBool || rk != types.KindBool {
			return fmt.Errorf("sql: %s requires boolean operands in %s", e.Op, e)
		}
	}
	return nil
}

// resolveColumn binds a column reference to a FROM entry, searching the
// current scope first, then enclosing scopes (correlated references).
func (a *analyzer) resolveColumn(c *ColumnRef) error {
	for depth := len(a.scopes) - 1; depth >= 0; depth-- {
		sc := a.scopes[depth]
		found := -1
		for i, t := range sc.stmt.From {
			if c.Table != "" && !strings.EqualFold(t.Binding(), c.Table) {
				continue
			}
			if idx := sc.rels[i].ColumnIndex(c.Column); idx >= 0 {
				if found >= 0 {
					return fmt.Errorf("sql: ambiguous column %s", c)
				}
				found = i
				c.TableIdx = i
				c.ColIdx = idx
				c.Type = sc.rels[i].Columns[idx].Type
			}
		}
		if found >= 0 {
			c.Outer = len(a.scopes) - 1 - depth
			return nil
		}
		if c.Table != "" {
			// A qualifier that matches a binding in this scope but no such
			// column is an error rather than an outer reference.
			for _, t := range sc.stmt.From {
				if strings.EqualFold(t.Binding(), c.Table) {
					return fmt.Errorf("sql: no column %s in %s", c.Column, t.Binding())
				}
			}
		}
	}
	return fmt.Errorf("sql: unresolved column %s", c)
}

// typeOf computes the result kind of a resolved expression.
func (a *analyzer) typeOf(e Expr) types.Kind { return TypeOf(e) }

// TypeOf returns the result kind of a resolved (analyzed) expression.
func TypeOf(e Expr) types.Kind {
	switch e := e.(type) {
	case *ColumnRef:
		return e.Type
	case *NumberLit:
		return e.Value.Kind()
	case *StringLit:
		return types.KindString
	case *BoolLit:
		return types.KindBool
	case *UnaryExpr:
		if e.Op == OpNot {
			return types.KindBool
		}
		return TypeOf(e.X)
	case *BinaryExpr:
		switch {
		case e.Op.IsComparison(), e.Op.IsBool():
			return types.KindBool
		case e.Op == OpDiv:
			if TypeOf(e.L) == types.KindInt && TypeOf(e.R) == types.KindInt {
				return types.KindInt
			}
			return types.KindFloat
		default:
			l, r := TypeOf(e.L), TypeOf(e.R)
			if l == types.KindInt && r == types.KindInt {
				return types.KindInt
			}
			return types.KindFloat
		}
	case *AggExpr:
		switch e.Func {
		case AggCount:
			return types.KindInt
		case AggAvg:
			return types.KindFloat
		case AggMin, AggMax:
			return TypeOf(e.Arg)
		default:
			return TypeOf(e.Arg)
		}
	case *SubqueryExpr:
		return TypeOf(e.Query.Items[0].Expr)
	case *ExistsExpr, *InExpr:
		return types.KindBool
	}
	return types.KindNull
}

// containsColumn reports whether e references any column (of any scope).
func containsColumn(e Expr) bool {
	switch e := e.(type) {
	case *ColumnRef:
		return true
	case *BinaryExpr:
		return containsColumn(e.L) || containsColumn(e.R)
	case *UnaryExpr:
		return containsColumn(e.X)
	case *AggExpr:
		return e.Star || containsColumn(e.Arg)
	case *ExistsExpr, *InExpr:
		// A predicate subquery depends on base data like a column does.
		return true
	default:
		return false
	}
}

func containsAggregate(e Expr) bool {
	switch e := e.(type) {
	case *AggExpr:
		return true
	case *BinaryExpr:
		return containsAggregate(e.L) || containsAggregate(e.R)
	case *UnaryExpr:
		return containsAggregate(e.X)
	case *InExpr:
		return containsAggregate(e.Needle)
	default:
		return false
	}
}
