package cli

import (
	"testing"

	"dbtoaster/internal/engine"
)

func TestBuiltinCatalogs(t *testing.T) {
	for _, name := range []string{"rst", "orderbook", "tpch", "ssb", "RST"} {
		if _, ok := BuiltinCatalog(name); !ok {
			t.Errorf("BuiltinCatalog(%q) missing", name)
		}
	}
	if _, ok := BuiltinCatalog("nope"); ok {
		t.Error("phantom catalog")
	}
}

func TestNamedQueriesAllCompile(t *testing.T) {
	for _, name := range NamedQueries() {
		src, cat, ok := NamedQuery(name)
		if !ok {
			t.Fatalf("NamedQuery(%q) missing", name)
		}
		if _, err := engine.Prepare(src, cat); err != nil {
			t.Errorf("query %q does not prepare: %v", name, err)
		}
	}
	if _, _, ok := NamedQuery("mystery"); ok {
		t.Error("phantom query")
	}
}

func TestParseTables(t *testing.T) {
	cat, err := ParseTables([]string{"R(A:int,B:float)", "S( X:string )"})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := cat.Relation("R")
	if !ok || r.Arity() != 2 {
		t.Errorf("R = %v", r)
	}
	s, ok := cat.Relation("s")
	if !ok || s.Arity() != 1 {
		t.Errorf("S = %v", s)
	}
}

func TestParseTablesErrors(t *testing.T) {
	for _, spec := range []string{
		"R",           // no parens
		"R(A:int",     // unterminated
		"(A:int)",     // no name
		"R()",         // no columns
		"R(A)",        // no type
		"R(A:plasma)", // unknown type
	} {
		if _, err := ParseTables([]string{spec}); err == nil {
			t.Errorf("ParseTables(%q) should fail", spec)
		}
	}
}
