// Package cli holds helpers shared by the command-line tools: built-in
// catalogs, named demo queries, and schema-spec parsing.
package cli

import (
	"fmt"
	"strings"

	"dbtoaster/internal/orderbook"
	"dbtoaster/internal/schema"
	"dbtoaster/internal/tpch"
)

// RSTCatalog is the paper's running-example schema.
func RSTCatalog() *schema.Catalog {
	return schema.NewCatalog(
		schema.NewRelation("R", "A:int", "B:int"),
		schema.NewRelation("S", "B:int", "C:int"),
		schema.NewRelation("T", "C:int", "D:int"),
	)
}

// BuiltinCatalog returns a named catalog: "rst", "orderbook", or "tpch".
func BuiltinCatalog(name string) (*schema.Catalog, bool) {
	switch strings.ToLower(name) {
	case "rst":
		return RSTCatalog(), true
	case "orderbook":
		return orderbook.Catalog(), true
	case "tpch", "ssb":
		return tpch.Catalog(), true
	}
	return nil, false
}

// NamedQuery resolves a demo query name to (SQL, catalog).
func NamedQuery(name string) (string, *schema.Catalog, bool) {
	switch strings.ToLower(name) {
	case "rst", "paper", "fig2":
		return "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C", RSTCatalog(), true
	case "vwap":
		return orderbook.QueryVWAPThreshold, orderbook.Catalog(), true
	case "turnover":
		return orderbook.QueryBidTurnover, orderbook.Catalog(), true
	case "brokers":
		return orderbook.QueryBrokerActivity, orderbook.Catalog(), true
	case "ssb41":
		return tpch.QuerySSB41, tpch.Catalog(), true
	case "ssb11":
		return tpch.QuerySSB11, tpch.Catalog(), true
	case "ssb21":
		return tpch.QuerySSB21, tpch.Catalog(), true
	case "ssb31":
		return tpch.QuerySSB31, tpch.Catalog(), true
	case "loadmon":
		return tpch.QueryLoadMonitor, tpch.Catalog(), true
	}
	return "", nil, false
}

// NamedQueries lists the available demo query names.
func NamedQueries() []string {
	return []string{"rst", "vwap", "turnover", "brokers", "ssb41", "ssb11", "ssb21", "ssb31", "loadmon"}
}

// ParseTables builds a catalog from specs like "R(A:int,B:float)".
func ParseTables(specs []string) (*schema.Catalog, error) {
	cat := schema.NewCatalog()
	for _, spec := range specs {
		open := strings.IndexByte(spec, '(')
		if open < 0 || !strings.HasSuffix(spec, ")") {
			return nil, fmt.Errorf("cli: malformed table spec %q (want Name(col:type,...))", spec)
		}
		name := strings.TrimSpace(spec[:open])
		if name == "" {
			return nil, fmt.Errorf("cli: empty table name in %q", spec)
		}
		var cols []string
		for _, c := range strings.Split(spec[open+1:len(spec)-1], ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			if !strings.Contains(c, ":") {
				return nil, fmt.Errorf("cli: malformed column %q in %q", c, spec)
			}
			cols = append(cols, c)
		}
		if len(cols) == 0 {
			return nil, fmt.Errorf("cli: table %q has no columns", name)
		}
		rel, err := schema.ParseRelation(name, cols...)
		if err != nil {
			return nil, err
		}
		cat.Add(rel)
	}
	return cat, nil
}
