package tpch

import (
	"testing"

	"dbtoaster/internal/engine"
	"dbtoaster/internal/runtime"
	"dbtoaster/internal/stream"
	"dbtoaster/internal/types"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(1, 1).Workload(300)
	b := NewGenerator(1, 1).Workload(300)
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestEventsValidAgainstCatalog(t *testing.T) {
	cat := Catalog()
	for _, ev := range NewGenerator(2, 2).Workload(500) {
		rel, ok := cat.Relation(ev.Relation)
		if !ok {
			t.Fatalf("unknown relation %s", ev.Relation)
		}
		if err := rel.Validate(ev.Args); err != nil {
			t.Fatalf("invalid %s: %v", ev, err)
		}
	}
}

func TestDimensionShape(t *testing.T) {
	g := NewGenerator(3, 1)
	dims := g.DimensionEvents()
	counts := map[string]int{}
	for _, ev := range dims {
		if ev.Op != stream.Insert {
			t.Fatalf("dimension phase contains deletes")
		}
		counts[ev.Relation]++
	}
	if counts["dates"] != 84 || counts["customer"] != 30 || counts["supplier"] != 10 || counts["part"] != 40 {
		t.Errorf("dimension counts = %v", counts)
	}
}

func TestFactCorrectionsAreValidRetractions(t *testing.T) {
	g := NewGenerator(4, 1)
	g.DimensionEvents()
	live := map[string]bool{}
	deletes := 0
	for _, ev := range g.FactEvents(2000) {
		key := ev.Args.String()
		if ev.Op == stream.Insert {
			live[key] = true
			continue
		}
		deletes++
		if !live[key] {
			t.Fatalf("retraction of unknown fact %s", ev)
		}
		delete(live, key)
	}
	if deletes == 0 {
		t.Error("no corrections generated")
	}
}

func TestRevenueValuesExact(t *testing.T) {
	g := NewGenerator(5, 1)
	g.DimensionEvents()
	for _, ev := range g.FactEvents(300) {
		rev := ev.Args[5].Float()
		if rev != float64(int64(rev)) {
			t.Fatalf("revenue %v is not integral (exactness requirement)", rev)
		}
	}
}

// TestSSBQueriesAllEnginesAgree runs the warehouse workload through the
// demo queries on all three engines.
func TestSSBQueriesAllEnginesAgree(t *testing.T) {
	evs := NewGenerator(6, 1).Workload(400)
	for _, src := range []string{QuerySSB41, QuerySSB11, QuerySSB21, QuerySSB31, QueryLoadMonitor} {
		q, err := engine.Prepare(src, Catalog())
		if err != nil {
			t.Fatalf("prepare: %v", err)
		}
		toaster, err := engine.NewToaster(q, runtime.Options{})
		if err != nil {
			t.Fatalf("toaster: %v", err)
		}
		engines := []engine.Engine{toaster, engine.NewNaive(q), engine.NewIVM(q)}
		for _, ev := range evs {
			for _, e := range engines {
				if err := e.OnEvent(ev); err != nil {
					t.Fatalf("%s on %s: %v", e.Name(), ev, err)
				}
			}
		}
		ref, err := engines[0].Results()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range engines[1:] {
			got, err := e.Results()
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Equal(got) {
				t.Fatalf("%s disagrees on %q\n%s\nvs\n%s", e.Name(), src, ref, got)
			}
		}
		if src == QuerySSB41 && len(ref.Rows) == 0 {
			t.Error("SSB 4.1 produced no groups (workload too small or filter broken)")
		}
		// Every SSB 4.1 row's nation must be American.
		if src == QuerySSB41 {
			american := map[string]bool{}
			for _, n := range nations["AMERICA"] {
				american[n] = true
			}
			for _, row := range ref.Rows {
				if !american[row[1].Str()] {
					t.Errorf("non-American nation %v in SSB 4.1 result", row[1])
				}
			}
		}
	}
}

func TestSSB41ProfitMatchesHandComputation(t *testing.T) {
	// Tiny hand-checkable scenario.
	cat := Catalog()
	q, err := engine.Prepare(QuerySSB41, cat)
	if err != nil {
		t.Fatal(err)
	}
	toaster, err := engine.NewToaster(q, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	evs := []stream.Event{
		stream.Ins("dates", types.NewInt(199301), types.NewInt(1993), types.NewInt(1)),
		stream.Ins("customer", types.NewInt(1), types.NewString("CANADA"), types.NewString("AMERICA")),
		stream.Ins("supplier", types.NewInt(1), types.NewString("PERU"), types.NewString("AMERICA")),
		stream.Ins("part", types.NewInt(1), types.NewString("MFGR#1"), types.NewString("MFGR#1#1")),
		stream.Ins("part", types.NewInt(2), types.NewString("MFGR#3"), types.NewString("MFGR#3#1")),
		// Qualifying fact: revenue 1000, cost 600 → profit 400.
		stream.Ins("lineorder", types.NewInt(1), types.NewInt(1), types.NewInt(1),
			types.NewInt(199301), types.NewFloat(10), types.NewFloat(1000), types.NewFloat(600)),
		// Non-qualifying part (MFGR#3).
		stream.Ins("lineorder", types.NewInt(1), types.NewInt(1), types.NewInt(2),
			types.NewInt(199301), types.NewFloat(10), types.NewFloat(500), types.NewFloat(100)),
	}
	for _, ev := range evs {
		if err := toaster.OnEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	res, err := toaster.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %s", res)
	}
	row := res.Rows[0]
	if row[0].Float() != 1993 || row[1].Str() != "CANADA" || row[2].Float() != 400 {
		t.Errorf("row = %v", row)
	}
}
