// Package tpch implements the paper's warehouse-loading demo workload: a
// deterministic, scaled-down TPC-H-shaped data generator whose output is
// streamed through the star-schema (SSB) transform into a lineorder fact
// stream, plus the SSB queries (4.1 and 1.1) the demo evaluates while
// loading. The paper uses TPC-H's dbgen output and a data-cleaning query;
// here the generator performs the same denormalizing transform inline
// (the documented substitution), producing the identical star schema and
// value distributions shaped like TPC-H's.
//
// Deletions appear in the stream as corrections — a fraction of fact rows
// are retracted and re-issued with adjusted revenue — exercising the
// arbitrary-lifetime data model during warehouse loading.
package tpch

import (
	"fmt"
	"math/rand"

	"dbtoaster/internal/schema"
	"dbtoaster/internal/stream"
	"dbtoaster/internal/types"
)

// Regions and manufacturer labels follow the SSB vocabulary.
var (
	regions = []string{"AMERICA", "EUROPE", "ASIA", "AFRICA", "MIDDLE EAST"}
	nations = map[string][]string{
		"AMERICA":     {"UNITED STATES", "CANADA", "BRAZIL", "PERU", "ARGENTINA"},
		"EUROPE":      {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
		"ASIA":        {"CHINA", "JAPAN", "INDIA", "INDONESIA", "VIETNAM"},
		"AFRICA":      {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
		"MIDDLE EAST": {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
	}
	mfgrs = []string{"MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"}
)

// Catalog returns the star schema: four dimensions and the lineorder fact.
func Catalog() *schema.Catalog {
	return schema.NewCatalog(
		schema.NewRelation("dates", "datekey:int", "year:int", "month:int"),
		schema.NewRelation("customer", "custkey:int", "nation:string", "region:string"),
		schema.NewRelation("supplier", "suppkey:int", "nation:string", "region:string"),
		schema.NewRelation("part", "partkey:int", "mfgr:string", "category:string"),
		schema.NewRelation("lineorder",
			"custkey:int", "suppkey:int", "partkey:int", "orderdate:int",
			"quantity:float", "revenue:float", "supplycost:float"),
	)
}

// SSB demo queries (for engines built with Catalog()).
const (
	// QuerySSB41 is Star Schema Benchmark query 4.1: yearly profit by
	// customer nation for the American trade lane — the paper's warehouse
	// demo query. A five-way join with a disjunctive part filter and a
	// two-column GROUP BY.
	QuerySSB41 = `select d.year, c.nation, sum(lo.revenue - lo.supplycost)
		from dates d, customer c, supplier s, part p, lineorder lo
		where lo.custkey = c.custkey and lo.suppkey = s.suppkey
		  and lo.partkey = p.partkey and lo.orderdate = d.datekey
		  and c.region = 'AMERICA' and s.region = 'AMERICA'
		  and (p.mfgr = 'MFGR#1' or p.mfgr = 'MFGR#2')
		group by d.year, c.nation`

	// QuerySSB11 is SSB query 1.1 restricted to the columns our fact
	// stream carries: total revenue for 1993 orders with small quantities.
	QuerySSB11 = `select sum(lo.revenue)
		from lineorder lo, dates d
		where lo.orderdate = d.datekey and d.year = 1993 and lo.quantity < 25`

	// QuerySSB21 is SSB query 2.1 restricted to our columns: revenue by
	// year and part category for one manufacturer and American suppliers.
	QuerySSB21 = `select d.year, p.category, sum(lo.revenue)
		from lineorder lo, dates d, part p, supplier s
		where lo.orderdate = d.datekey and lo.partkey = p.partkey
		  and lo.suppkey = s.suppkey
		  and p.mfgr = 'MFGR#1' and s.region = 'AMERICA'
		group by d.year, p.category`

	// QuerySSB31 is SSB query 3.1 restricted to our columns: intra-Asia
	// trade revenue by customer nation, supplier nation, and year.
	QuerySSB31 = `select c.nation, s.nation, d.year, sum(lo.revenue)
		from customer c, lineorder lo, supplier s, dates d
		where lo.custkey = c.custkey and lo.suppkey = s.suppkey
		  and lo.orderdate = d.datekey
		  and c.region = 'ASIA' and s.region = 'ASIA'
		  and d.year >= 1992 and d.year <= 1997
		group by c.nation, s.nation, d.year`

	// QueryLoadMonitor tracks loading progress per order year.
	QueryLoadMonitor = `select d.year, count(*), sum(lo.revenue)
		from lineorder lo, dates d
		where lo.orderdate = d.datekey
		group by d.year`

	// QueryDimCoverage audits referential integrity during the load
	// through a LEFT OUTER JOIN: sum(lo.revenue) counts every fact row
	// immediately, while count(d.datekey) counts only facts whose date
	// dimension row has arrived — the gap is the load's outstanding
	// dimension debt, maintained via the antijoin correction term.
	QueryDimCoverage = `select sum(lo.revenue), count(d.datekey)
		from lineorder lo left outer join dates d on lo.orderdate = d.datekey`
)

// Generator produces the dimension-then-facts event stream.
type Generator struct {
	rng   *rand.Rand
	Scale int
	// dimension cardinalities, derived from Scale
	nCust, nSupp, nPart int
	dateKeys            []int64
	facts               []types.Tuple // live facts, for corrections
}

// NewGenerator seeds a generator. Scale 1 ≈ 30 customers, 10 suppliers,
// 40 parts, 7 years of dates; fact volume is chosen per call.
func NewGenerator(seed int64, scale int) *Generator {
	if scale < 1 {
		scale = 1
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed)), Scale: scale}
	g.nCust = 30 * scale
	g.nSupp = 10 * scale
	g.nPart = 40 * scale
	for year := int64(1992); year <= 1998; year++ {
		for month := int64(1); month <= 12; month++ {
			g.dateKeys = append(g.dateKeys, year*100+month)
		}
	}
	return g
}

func (g *Generator) pickNation() (string, string) {
	region := regions[g.rng.Intn(len(regions))]
	ns := nations[region]
	return ns[g.rng.Intn(len(ns))], region
}

// DimensionEvents produces the dimension-load phase: every dimension row
// as an insert (the warehouse's reference data).
func (g *Generator) DimensionEvents() []stream.Event {
	var out []stream.Event
	for _, dk := range g.dateKeys {
		out = append(out, stream.Ins("dates",
			types.NewInt(dk), types.NewInt(dk/100), types.NewInt(dk%100)))
	}
	for i := 1; i <= g.nCust; i++ {
		nation, region := g.pickNation()
		out = append(out, stream.Ins("customer",
			types.NewInt(int64(i)), types.NewString(nation), types.NewString(region)))
	}
	for i := 1; i <= g.nSupp; i++ {
		nation, region := g.pickNation()
		out = append(out, stream.Ins("supplier",
			types.NewInt(int64(i)), types.NewString(nation), types.NewString(region)))
	}
	for i := 1; i <= g.nPart; i++ {
		mfgr := mfgrs[g.rng.Intn(len(mfgrs))]
		out = append(out, stream.Ins("part",
			types.NewInt(int64(i)), types.NewString(mfgr),
			types.NewString(fmt.Sprintf("%s#%d", mfgr, g.rng.Intn(5)+1))))
	}
	return out
}

// factTuple draws one lineorder row (the inline TPC-H→SSB transform:
// lineitem extended-price arithmetic denormalized against its order).
func (g *Generator) factTuple() types.Tuple {
	qty := float64(1 + g.rng.Intn(50))
	price := float64(100 + g.rng.Intn(900)) // whole currency units: exact
	revenue := qty * price
	supplycost := float64(int(revenue) * (50 + g.rng.Intn(20)) / 100)
	return types.Tuple{
		types.NewInt(int64(1 + g.rng.Intn(g.nCust))),
		types.NewInt(int64(1 + g.rng.Intn(g.nSupp))),
		types.NewInt(int64(1 + g.rng.Intn(g.nPart))),
		types.NewInt(g.dateKeys[g.rng.Intn(len(g.dateKeys))]),
		types.NewFloat(qty),
		types.NewFloat(revenue),
		types.NewFloat(supplycost),
	}
}

// FactEvents produces n fact-stream events: mostly inserts, with ~5%
// corrections (retract a prior fact and re-issue it with new revenue).
func (g *Generator) FactEvents(n int) []stream.Event {
	out := make([]stream.Event, 0, n)
	for len(out) < n {
		if len(g.facts) > 10 && g.rng.Intn(20) == 0 {
			idx := g.rng.Intn(len(g.facts))
			old := g.facts[idx]
			out = append(out, stream.Event{Op: stream.Delete, Relation: "lineorder", Args: old})
			fixed := old.Clone()
			fixed[5] = types.NewFloat(old[5].Float() - float64(g.rng.Intn(100)))
			g.facts[idx] = fixed
			out = append(out, stream.Event{Op: stream.Insert, Relation: "lineorder", Args: fixed})
			continue
		}
		f := g.factTuple()
		g.facts = append(g.facts, f)
		out = append(out, stream.Event{Op: stream.Insert, Relation: "lineorder", Args: f})
	}
	return out
}

// Workload produces the full warehouse-loading stream: dimensions first,
// then n fact events.
func (g *Generator) Workload(nFacts int) []stream.Event {
	return append(g.DimensionEvents(), g.FactEvents(nFacts)...)
}
