// Package treap implements an order-statistic treap keyed by value tuples
// with augmented subtree sums. The runtime mirrors "sorted" view maps into
// a treap so MIN/MAX reads and threshold range aggregates (rewritten
// subquery comparisons) run in O(log n), while ordinary map updates stay
// O(1) on the hash side.
package treap

import (
	"dbtoaster/internal/types"
)

type node struct {
	key  types.Tuple
	val  float64
	sum  float64 // subtree value sum
	cnt  int     // subtree size
	prio uint64
	l, r *node
}

func (n *node) update() {
	n.sum = n.val
	n.cnt = 1
	if n.l != nil {
		n.sum += n.l.sum
		n.cnt += n.l.cnt
	}
	if n.r != nil {
		n.sum += n.r.sum
		n.cnt += n.r.cnt
	}
}

// Tree is an ordered map from tuples to float64 values with O(log n)
// insert, delete, lookup, and range-sum. The zero value is not ready;
// use New.
type Tree struct {
	root *node
	rng  uint64
}

// New creates an empty tree. Priorities come from a deterministic
// per-tree xorshift stream, keeping runs reproducible.
func New() *Tree { return &Tree{rng: 0x9E3779B97F4A7C15} }

func (t *Tree) nextPrio() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

// Len returns the number of keys.
func (t *Tree) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.cnt
}

// Get returns the value stored at key (0 when absent).
func (t *Tree) Get(key types.Tuple) (float64, bool) {
	n := t.root
	for n != nil {
		switch c := key.Compare(n.key); {
		case c < 0:
			n = n.l
		case c > 0:
			n = n.r
		default:
			return n.val, true
		}
	}
	return 0, false
}

// Set stores value at key; value 0 deletes the key.
func (t *Tree) Set(key types.Tuple, value float64) {
	if value == 0 {
		t.root = remove(t.root, key)
		return
	}
	if n := find(t.root, key); n != nil {
		delta := value - n.val
		n.val = value
		addOnPath(t.root, key, delta)
		return
	}
	nn := &node{key: key.Clone(), val: value, prio: t.nextPrio()}
	nn.update()
	l, r := split(t.root, key, false)
	t.root = merge(merge(l, nn), r)
}

// Add adds delta to the value at key, inserting or deleting as needed.
func (t *Tree) Add(key types.Tuple, delta float64) {
	if delta == 0 {
		return
	}
	if n := find(t.root, key); n != nil {
		if n.val+delta == 0 {
			t.root = remove(t.root, key)
			return
		}
		n.val += delta
		addOnPath(t.root, key, delta)
		return
	}
	t.Set(key, delta)
}

func find(n *node, key types.Tuple) *node {
	for n != nil {
		switch c := key.Compare(n.key); {
		case c < 0:
			n = n.l
		case c > 0:
			n = n.r
		default:
			return n
		}
	}
	return nil
}

// addOnPath fixes the augmented sums along the search path of key.
func addOnPath(n *node, key types.Tuple, delta float64) {
	for n != nil {
		n.sum += delta
		switch c := key.Compare(n.key); {
		case c < 0:
			n = n.l
		case c > 0:
			n = n.r
		default:
			return
		}
	}
}

// split partitions n into keys < key (or <= when orEq) and the rest.
func split(n *node, key types.Tuple, orEq bool) (*node, *node) {
	if n == nil {
		return nil, nil
	}
	c := n.key.Compare(key)
	goLeft := c > 0 || (c == 0 && !orEq)
	if goLeft {
		l, r := split(n.l, key, orEq)
		n.l = r
		n.update()
		return l, n
	}
	l, r := split(n.r, key, orEq)
	n.r = l
	n.update()
	return n, r
}

func merge(a, b *node) *node {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.prio >= b.prio:
		a.r = merge(a.r, b)
		a.update()
		return a
	default:
		b.l = merge(a, b.l)
		b.update()
		return b
	}
}

func remove(n *node, key types.Tuple) *node {
	if n == nil {
		return nil
	}
	switch c := key.Compare(n.key); {
	case c < 0:
		n.l = remove(n.l, key)
	case c > 0:
		n.r = remove(n.r, key)
	default:
		return merge(n.l, n.r)
	}
	n.update()
	return n
}

// RangeSum returns the sum of values with lo ≤/< key ≤/< hi. Bounds may be
// shorter tuples than the stored keys (prefix bounds); nil means unbounded.
func (t *Tree) RangeSum(lo, hi types.Tuple, loOpen, hiOpen bool) float64 {
	return rangeSum(t.root, lo, hi, loOpen, hiOpen)
}

func rangeSum(n *node, lo, hi types.Tuple, loOpen, hiOpen bool) float64 {
	if n == nil {
		return 0
	}
	if !aboveLo(n.key, lo, loOpen) {
		return rangeSum(n.r, lo, hi, loOpen, hiOpen)
	}
	if !belowHi(n.key, hi, hiOpen) {
		return rangeSum(n.l, lo, hi, loOpen, hiOpen)
	}
	// n is inside: left subtree only needs the lo bound, right only hi.
	total := n.val
	total += sumAbove(n.l, lo, loOpen)
	total += sumBelow(n.r, hi, hiOpen)
	return total
}

func sumAbove(n *node, lo types.Tuple, loOpen bool) float64 {
	if n == nil {
		return 0
	}
	if lo == nil {
		return n.sum
	}
	if !aboveLo(n.key, lo, loOpen) {
		return sumAbove(n.r, lo, loOpen)
	}
	s := n.val + sumAbove(n.l, lo, loOpen)
	if n.r != nil {
		s += n.r.sum
	}
	return s
}

func sumBelow(n *node, hi types.Tuple, hiOpen bool) float64 {
	if n == nil {
		return 0
	}
	if hi == nil {
		return n.sum
	}
	if !belowHi(n.key, hi, hiOpen) {
		return sumBelow(n.l, hi, hiOpen)
	}
	s := n.val + sumBelow(n.r, hi, hiOpen)
	if n.l != nil {
		s += n.l.sum
	}
	return s
}

func aboveLo(key, lo types.Tuple, open bool) bool {
	if lo == nil {
		return true
	}
	c := key.Compare(lo)
	if open {
		return c > 0
	}
	return c >= 0
}

func belowHi(key, hi types.Tuple, open bool) bool {
	if hi == nil {
		return true
	}
	c := key.Compare(hi)
	if open {
		return c < 0
	}
	return c <= 0
}

// First returns the smallest key in the bounded range.
func (t *Tree) First(lo, hi types.Tuple, loOpen, hiOpen bool) (types.Tuple, float64, bool) {
	n := t.root
	var best *node
	for n != nil {
		if !aboveLo(n.key, lo, loOpen) {
			n = n.r
			continue
		}
		if !belowHi(n.key, hi, hiOpen) {
			n = n.l
			continue
		}
		best = n
		n = n.l
	}
	if best == nil {
		return nil, 0, false
	}
	return best.key, best.val, true
}

// Last returns the largest key in the bounded range.
func (t *Tree) Last(lo, hi types.Tuple, loOpen, hiOpen bool) (types.Tuple, float64, bool) {
	n := t.root
	var best *node
	for n != nil {
		if !belowHi(n.key, hi, hiOpen) {
			n = n.l
			continue
		}
		if !aboveLo(n.key, lo, loOpen) {
			n = n.r
			continue
		}
		best = n
		n = n.r
	}
	if best == nil {
		return nil, 0, false
	}
	return best.key, best.val, true
}

// Walk visits all entries in key order; returning false stops the walk.
func (t *Tree) Walk(f func(types.Tuple, float64) bool) { walk(t.root, f) }

func walk(n *node, f func(types.Tuple, float64) bool) bool {
	if n == nil {
		return true
	}
	return walk(n.l, f) && f(n.key, n.val) && walk(n.r, f)
}

// SuffixThreshold returns the smallest key whose strict-suffix sum (the
// sum of values at keys strictly greater than it) is below target. This is
// the order-statistic descent behind the correlated VWAP query: the price
// level where cumulative volume above it drops under a fraction of total.
func (t *Tree) SuffixThreshold(target float64) (types.Tuple, bool) {
	n := t.root
	acc := 0.0
	var best types.Tuple
	found := false
	for n != nil {
		rs := 0.0
		if n.r != nil {
			rs = n.r.sum
		}
		if acc+rs < target {
			// Keys > n.key sum to acc+rs < target: n qualifies; look for a
			// smaller qualifying key to the left.
			best = n.key
			found = true
			acc += rs + n.val
			n = n.l
		} else {
			n = n.r
		}
	}
	return best, found
}

// Sum returns the total of all values.
func (t *Tree) Sum() float64 {
	if t.root == nil {
		return 0
	}
	return t.root.sum
}
