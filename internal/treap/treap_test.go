package treap

import (
	"math/rand"
	"sort"
	"testing"

	"dbtoaster/internal/types"
)

func key(vals ...int64) types.Tuple {
	t := make(types.Tuple, len(vals))
	for i, v := range vals {
		t[i] = types.NewInt(v)
	}
	return t
}

func TestSetGetDelete(t *testing.T) {
	tr := New()
	tr.Set(key(3), 30)
	tr.Set(key(1), 10)
	tr.Set(key(2), 20)
	if tr.Len() != 3 || tr.Sum() != 60 {
		t.Fatalf("len=%d sum=%v", tr.Len(), tr.Sum())
	}
	if v, ok := tr.Get(key(2)); !ok || v != 20 {
		t.Errorf("Get(2) = %v %v", v, ok)
	}
	tr.Set(key(2), 25)
	if v, _ := tr.Get(key(2)); v != 25 || tr.Sum() != 65 {
		t.Errorf("update failed: %v sum=%v", v, tr.Sum())
	}
	tr.Set(key(2), 0) // delete
	if _, ok := tr.Get(key(2)); ok || tr.Len() != 2 {
		t.Error("delete failed")
	}
}

func TestAdd(t *testing.T) {
	tr := New()
	tr.Add(key(1), 5)
	tr.Add(key(1), 3)
	if v, _ := tr.Get(key(1)); v != 8 {
		t.Errorf("Add accumulate = %v", v)
	}
	tr.Add(key(1), -8) // cancels to zero → removed
	if _, ok := tr.Get(key(1)); ok || tr.Len() != 0 {
		t.Error("zero-cancel delete failed")
	}
	tr.Add(key(2), 0) // no-op
	if tr.Len() != 0 {
		t.Error("zero add created entry")
	}
}

func TestWalkOrdered(t *testing.T) {
	tr := New()
	for _, v := range []int64{5, 1, 4, 2, 3} {
		tr.Set(key(v), float64(v))
	}
	var got []int64
	tr.Walk(func(k types.Tuple, _ float64) bool {
		got = append(got, k[0].Int())
		return true
	})
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not ordered: %v", got)
		}
	}
	// Early stop.
	n := 0
	tr.Walk(func(types.Tuple, float64) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("walk early stop visited %d", n)
	}
}

func TestRangeSumSimple(t *testing.T) {
	tr := New()
	for i := int64(1); i <= 10; i++ {
		tr.Set(key(i), float64(i))
	}
	cases := []struct {
		lo, hi         types.Tuple
		loOpen, hiOpen bool
		want           float64
	}{
		{nil, nil, false, false, 55},
		{key(3), key(5), false, false, 12}, // 3+4+5
		{key(3), key(5), true, false, 9},   // 4+5
		{key(3), key(5), false, true, 7},   // 3+4
		{key(3), key(5), true, true, 4},    // 4
		{key(8), nil, true, false, 19},     // 9+10
		{nil, key(2), false, true, 1},      // 1
		{key(11), nil, false, false, 0},
		{key(5), key(3), false, false, 0}, // empty range
	}
	for _, c := range cases {
		if got := tr.RangeSum(c.lo, c.hi, c.loOpen, c.hiOpen); got != c.want {
			t.Errorf("RangeSum(%v,%v,%v,%v) = %v, want %v", c.lo, c.hi, c.loOpen, c.hiOpen, got, c.want)
		}
	}
}

func TestPrefixBounds(t *testing.T) {
	// Composite keys (group, value): prefix-bounded queries per group.
	tr := New()
	tr.Set(key(1, 10), 1)
	tr.Set(key(1, 20), 2)
	tr.Set(key(2, 5), 4)
	tr.Set(key(2, 30), 8)
	g1hi := types.Tuple{types.NewInt(1), types.PosInf}
	if got := tr.RangeSum(key(1), g1hi, false, false); got != 3 {
		t.Errorf("group-1 sum = %v", got)
	}
	// Threshold within group 2: values > 5.
	if got := tr.RangeSum(key(2, 5), types.Tuple{types.NewInt(2), types.PosInf}, true, false); got != 8 {
		t.Errorf("group-2 >5 sum = %v", got)
	}
	// Min/max per group.
	if k, v, ok := tr.First(key(2), types.Tuple{types.NewInt(2), types.PosInf}, false, false); !ok || k[1].Int() != 5 || v != 4 {
		t.Errorf("group-2 min = %v %v %v", k, v, ok)
	}
	if k, _, ok := tr.Last(key(1), types.Tuple{types.NewInt(1), types.PosInf}, false, false); !ok || k[1].Int() != 20 {
		t.Errorf("group-1 max = %v", k)
	}
	// Empty group.
	if _, _, ok := tr.First(key(3), types.Tuple{types.NewInt(3), types.PosInf}, false, false); ok {
		t.Error("phantom group")
	}
}

// TestAgainstReference drives random operations against a sorted-slice
// reference implementation.
func TestAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tr := New()
	ref := map[int64]float64{}
	for op := 0; op < 5000; op++ {
		k := int64(r.Intn(200))
		switch r.Intn(3) {
		case 0:
			v := float64(r.Intn(19) - 9)
			tr.Set(key(k), v)
			if v == 0 {
				delete(ref, k)
			} else {
				ref[k] = v
			}
		case 1:
			d := float64(r.Intn(19) - 9)
			tr.Add(key(k), d)
			ref[k] += d
			if ref[k] == 0 {
				delete(ref, k)
			}
		case 2:
			lo := int64(r.Intn(200))
			hi := lo + int64(r.Intn(50))
			loOpen, hiOpen := r.Intn(2) == 0, r.Intn(2) == 0
			var want float64
			for rk, rv := range ref {
				okLo := rk > lo || (!loOpen && rk == lo)
				okHi := rk < hi || (!hiOpen && rk == hi)
				if okLo && okHi {
					want += rv
				}
			}
			if got := tr.RangeSum(key(lo), key(hi), loOpen, hiOpen); got != want {
				t.Fatalf("op %d: RangeSum(%d,%d,%v,%v) = %v, want %v", op, lo, hi, loOpen, hiOpen, got, want)
			}
		}
	}
	// Final structural checks.
	if tr.Len() != len(ref) {
		t.Fatalf("len = %d, ref %d", tr.Len(), len(ref))
	}
	var keys []int64
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	i := 0
	tr.Walk(func(k types.Tuple, v float64) bool {
		if k[0].Int() != keys[i] || v != ref[keys[i]] {
			t.Fatalf("walk mismatch at %d: %v=%v, want %d=%v", i, k, v, keys[i], ref[keys[i]])
		}
		i++
		return true
	})
	var want float64
	for _, v := range ref {
		want += v
	}
	if got := tr.Sum(); got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestFirstLastUnbounded(t *testing.T) {
	tr := New()
	if _, _, ok := tr.First(nil, nil, false, false); ok {
		t.Error("First on empty tree")
	}
	for _, v := range []int64{7, 3, 9} {
		tr.Set(key(v), 1)
	}
	if k, _, _ := tr.First(nil, nil, false, false); k[0].Int() != 3 {
		t.Errorf("First = %v", k)
	}
	if k, _, _ := tr.Last(nil, nil, false, false); k[0].Int() != 9 {
		t.Errorf("Last = %v", k)
	}
}

func TestKeyCloneOnInsert(t *testing.T) {
	tr := New()
	k := key(1, 2)
	tr.Set(k, 5)
	k[0] = types.NewInt(99) // caller mutates after insert
	if _, ok := tr.Get(key(1, 2)); !ok {
		t.Error("tree aliased caller's tuple")
	}
}
