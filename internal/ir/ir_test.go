package ir

import (
	"strings"
	"testing"

	"dbtoaster/internal/algebra"
	"dbtoaster/internal/types"
)

func intConst(n int64) Expr { return &Const{Value: types.NewInt(n)} }

func TestExprStrings(t *testing.T) {
	e := &Arith{Op: '*',
		L: &VarRef{Name: "@r_a"},
		R: &Lookup{Map: "m1", Keys: []Expr{&VarRef{Name: "@r_b"}}},
	}
	if got := e.String(); got != "(@r_a * m1[@r_b])" {
		t.Errorf("String = %q", got)
	}
	c := &CmpE{Op: algebra.CmpLt, L: intConst(1), R: intConst(2)}
	if got := c.String(); got != "(1 < 2)" {
		t.Errorf("cmp = %q", got)
	}
}

func TestStmtString(t *testing.T) {
	s := &Stmt{
		Target: "m4",
		Keys:   []Expr{&VarRef{Name: "k0"}},
		Loops: []Loop{{
			Map:      "m5",
			Bound:    []Expr{&VarRef{Name: "@r_b"}, nil},
			FreeVars: []algebra.Var{"", "k0"},
			ValueVar: "@lv1",
		}},
		Delta: &Arith{Op: '*', L: &VarRef{Name: "@r_a"}, R: &VarRef{Name: "@lv1"}},
	}
	want := "foreach (k0) in m5[@r_b,k0]: m4[k0] += (@r_a * @lv1)"
	if got := s.String(); got != want {
		t.Errorf("stmt = %q, want %q", got, want)
	}
}

func TestScalarTargetString(t *testing.T) {
	s := &Stmt{Target: "q", Delta: intConst(1)}
	if got := s.String(); got != "q += 1" {
		t.Errorf("stmt = %q", got)
	}
}

func TestTriggerLookup(t *testing.T) {
	p := &Program{
		Maps: map[string]*MapDecl{},
		Triggers: []*Trigger{
			{Relation: "R", Insert: true},
			{Relation: "R", Insert: false},
		},
	}
	if p.Trigger("r", true) == nil || p.Trigger("R", false) == nil {
		t.Error("case-insensitive trigger lookup failed")
	}
	if p.Trigger("S", true) != nil {
		t.Error("phantom trigger")
	}
	if p.Triggers[0].Name() != "+R" || p.Triggers[1].Name() != "-R" {
		t.Error("trigger names wrong")
	}
}

func TestSortStmtsOrdersReadersFirst(t *testing.T) {
	// stmt A updates m1; stmt B reads m1 and updates q. B must run first
	// (pre-state reads), regardless of insertion order.
	a := &Stmt{Target: "m1", Delta: intConst(1), Level: 1}
	b := &Stmt{Target: "q", Delta: &Lookup{Map: "m1"}, Level: 0}
	p := &Program{
		Maps:     map[string]*MapDecl{},
		Triggers: []*Trigger{{Relation: "R", Insert: true, Stmts: []*Stmt{a, b}}},
	}
	if err := p.SortStmts(); err != nil {
		t.Fatal(err)
	}
	if p.Triggers[0].Stmts[0] != b {
		t.Errorf("reader not ordered first")
	}
}

func TestSortStmtsDetectsCycle(t *testing.T) {
	a := &Stmt{Target: "m1", Delta: &Lookup{Map: "m2"}, Level: 1}
	b := &Stmt{Target: "m2", Delta: &Lookup{Map: "m1"}, Level: 1}
	p := &Program{
		Maps:     map[string]*MapDecl{},
		Triggers: []*Trigger{{Relation: "R", Insert: true, Stmts: []*Stmt{a, b}}},
	}
	if err := p.SortStmts(); err == nil {
		t.Error("read/write cycle not detected")
	}
}

func TestSortStmtsSelfReadAllowed(t *testing.T) {
	// A statement may read its own target (e.g. self-join deltas).
	a := &Stmt{Target: "q", Delta: &Lookup{Map: "q"}, Level: 0}
	p := &Program{
		Maps:     map[string]*MapDecl{},
		Triggers: []*Trigger{{Relation: "R", Insert: true, Stmts: []*Stmt{a}}},
	}
	if err := p.SortStmts(); err != nil {
		t.Errorf("self-read rejected: %v", err)
	}
}

func TestCollectReadsCoversAllPositions(t *testing.T) {
	s := &Stmt{
		Target: "t",
		Keys:   []Expr{&Lookup{Map: "inKey"}},
		Loops: []Loop{{
			Map:   "loopMap",
			Bound: []Expr{&Lookup{Map: "inBound"}},
		}},
		Lets:  []Let{{Var: "x", Expr: &Lookup{Map: "inLet"}}},
		Cond:  &CmpE{Op: algebra.CmpEq, L: &Lookup{Map: "inCond"}, R: intConst(0)},
		Delta: &Arith{Op: '+', L: &Lookup{Map: "inDelta"}, R: intConst(0)},
	}
	set := map[string]bool{}
	collectReads(s, set)
	for _, m := range []string{"inKey", "loopMap", "inBound", "inLet", "inCond", "inDelta"} {
		if !set[m] {
			t.Errorf("read of %s not collected", m)
		}
	}
}

func TestProgramString(t *testing.T) {
	decl := &MapDecl{
		Name:       "q",
		Definition: &algebra.AggSum{Body: algebra.NewRel("R", "a")},
		Sorted:     true,
	}
	p := &Program{
		QueryName: "q",
		Maps:      map[string]*MapDecl{"q": decl},
		MapOrder:  []string{"q"},
		Triggers: []*Trigger{{
			Relation: "R", Insert: true, Params: []algebra.Var{"@r_a"},
			Stmts: []*Stmt{{Target: "q", Delta: &VarRef{Name: "@r_a"}}},
		}},
	}
	out := p.String()
	for _, want := range []string{"map q[] (sorted)", "on +R(@r_a):", "q += @r_a"} {
		if !strings.Contains(out, want) {
			t.Errorf("program rendering missing %q:\n%s", want, out)
		}
	}
}
