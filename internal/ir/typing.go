package ir

import (
	"fmt"

	"dbtoaster/internal/algebra"
	"dbtoaster/internal/schema"
	"dbtoaster/internal/types"
)

// InferTypes is the static typing pass over a compiled trigger program: the
// bridge between the catalog's column types and the runtime's physical
// layer. It fills MapDecl.KeyKinds/ValueKind, Trigger.ParamKinds, and the
// Type annotation of every expression in every statement, so that the
// runtime can pick specialized map storage and unboxed kernels, and codegen
// can emit natively-typed Go — all from one inference.
//
// The rules mirror the generic runtime's dynamic semantics exactly:
//
//   - relation columns carry their catalog kind; lifted variables carry
//     their defining expression's kind (resolved to a fixed point);
//   - map lookups are always KindFloat (the runtime accumulates every
//     aggregate in float64 and reads it back as a float value);
//   - int op int stays int for +, -, *, and / (types.Div truncates);
//     any other known combination promotes to float;
//   - comparisons yield the integers 1 or 0.
//
// Positions whose kind cannot be established — or where two relations bind
// the same variable with conflicting kinds — are annotated KindNull
// ("unknown"); consumers must fall back to generic dynamic evaluation for
// them. InferTypes only errors when the program references a relation the
// catalog does not know, which indicates a compiler bug rather than an
// exotic query.
func InferTypes(prog *Program, cat *schema.Catalog) error {
	for _, name := range prog.MapOrder {
		if err := inferMapKinds(prog.Maps[name], cat); err != nil {
			return err
		}
	}
	for _, t := range prog.Triggers {
		rel, ok := cat.Relation(t.Relation)
		if !ok {
			return fmt.Errorf("ir: trigger references unknown relation %q", t.Relation)
		}
		t.ParamKinds = make([]types.Kind, len(t.Params))
		for i := range t.Params {
			if i < len(rel.Columns) {
				t.ParamKinds[i] = rel.Columns[i].Type
			}
		}
		for _, s := range t.Stmts {
			annotateStmt(prog, t, s)
		}
	}
	return nil
}

// inferMapKinds derives one map's key kinds and value kind from its
// defining algebra term.
func inferMapKinds(m *MapDecl, cat *schema.Catalog) error {
	varKinds := map[algebra.Var]types.Kind{}
	conflict := map[algebra.Var]bool{}
	factors := flattenBody(m.Definition.Body)
	// Relation columns first; a variable bound by two relations with
	// different kinds is a conflict (the access paths would disagree on
	// the physical representation), so it stays unknown.
	for _, f := range factors {
		rel, ok := f.(*algebra.Rel)
		if !ok {
			continue
		}
		r, ok := cat.Relation(rel.Name)
		if !ok {
			return fmt.Errorf("ir: map %s references unknown relation %q", m.Name, rel.Name)
		}
		for i, v := range rel.Vars {
			if i >= len(r.Columns) {
				continue
			}
			k := r.Columns[i].Type
			if prev, seen := varKinds[v]; seen && prev != k {
				conflict[v] = true
				continue
			}
			varKinds[v] = k
		}
	}
	for v := range conflict {
		delete(varKinds, v)
	}
	// Lifts and equality factors next: a lift's expression closes over
	// relation variables, and a variable bound only through [x = k]
	// (canonicalized count-map keys) inherits its partner's kind. Both may
	// chain, so resolve to a fixed point.
	for changed := true; changed; {
		changed = false
		for _, f := range factors {
			switch f := f.(type) {
			case *algebra.Lift:
				if _, done := varKinds[f.Var]; done || conflict[f.Var] {
					continue
				}
				if k := valExprKind(f.Expr, varKinds); k != types.KindNull {
					varKinds[f.Var] = k
					changed = true
				}
			case *algebra.Cmp:
				if f.Op != algebra.CmpEq {
					continue
				}
				lv, lok := f.L.(*algebra.VVar)
				rv, rok := f.R.(*algebra.VVar)
				if !lok || !rok || conflict[lv.Name] || conflict[rv.Name] {
					continue
				}
				lk, rk := varKinds[lv.Name], varKinds[rv.Name]
				if lk != types.KindNull && rk == types.KindNull {
					varKinds[rv.Name] = lk
					changed = true
				} else if rk != types.KindNull && lk == types.KindNull {
					varKinds[lv.Name] = rk
					changed = true
				}
			}
		}
	}
	m.KeyKinds = make([]types.Kind, len(m.Keys))
	for i, v := range m.Keys {
		m.KeyKinds[i] = varKinds[v] // KindNull when unknown or conflicted
	}
	m.ValueKind = bodyValueKind(factors, varKinds)
	return nil
}

// flattenBody collects the leaf factors of a product/sum tree. For kind
// purposes the distinction does not matter: both multiplication and
// addition promote to float as soon as one operand is float.
func flattenBody(t algebra.Term) []algebra.Term {
	switch t := t.(type) {
	case *algebra.Prod:
		var out []algebra.Term
		for _, f := range t.Factors {
			out = append(out, flattenBody(f)...)
		}
		return out
	case *algebra.Sum:
		var out []algebra.Term
		for _, x := range t.Terms {
			out = append(out, flattenBody(x)...)
		}
		return out
	default:
		return []algebra.Term{t}
	}
}

// bodyValueKind infers the kind of the aggregate value: relations, lifts,
// and comparisons contribute integral multiplicities; Val factors carry
// their expression's kind. Anything unknown degrades to float — the
// accumulator's native representation.
func bodyValueKind(factors []algebra.Term, vars map[algebra.Var]types.Kind) types.Kind {
	kind := types.KindInt
	for _, f := range factors {
		switch f := f.(type) {
		case *algebra.Rel, *algebra.Cmp, *algebra.Lift, *algebra.Exists:
			// multiplicity or 0/1 indicator: integral
		case *algebra.Val:
			switch valExprKind(f.Expr, vars) {
			case types.KindInt:
			default:
				kind = types.KindFloat
			}
		case *algebra.AggSum:
			kind = types.KindFloat
		default:
			_ = f
			kind = types.KindFloat
		}
	}
	return kind
}

// valExprKind types a scalar algebra expression; KindNull means unknown.
func valExprKind(e algebra.ValExpr, vars map[algebra.Var]types.Kind) types.Kind {
	switch e := e.(type) {
	case *algebra.VConst:
		return e.Value.Kind()
	case *algebra.VVar:
		return vars[e.Name]
	case *algebra.VArith:
		l := valExprKind(e.L, vars)
		r := valExprKind(e.R, vars)
		return arithKind(l, r)
	}
	return types.KindNull
}

// arithKind is the runtime's numeric promotion rule (types.arith/Div):
// int op int stays int, every other known combination evaluates through
// Float() and yields float.
func arithKind(l, r types.Kind) types.Kind {
	if l == types.KindNull || r == types.KindNull {
		return types.KindNull
	}
	if l == types.KindInt && r == types.KindInt {
		return types.KindInt
	}
	return types.KindFloat
}

// annotateStmt types one statement: loop variables scope over the key,
// condition, let, and delta expressions.
func annotateStmt(prog *Program, t *Trigger, s *Stmt) {
	env := map[algebra.Var]types.Kind{}
	for i, p := range t.Params {
		if i < len(t.ParamKinds) {
			env[p] = t.ParamKinds[i]
		}
	}
	for li := range s.Loops {
		lp := &s.Loops[li]
		var mk []types.Kind
		if d := prog.Maps[lp.Map]; d != nil {
			mk = d.KeyKinds
		}
		for _, b := range lp.Bound {
			if b != nil {
				annotateExpr(prog, b, env)
			}
		}
		for pos, v := range lp.FreeVars {
			if v == "" {
				continue
			}
			if pos < len(mk) {
				env[v] = mk[pos]
			} else {
				env[v] = types.KindNull
			}
		}
		if lp.ValueVar != "" {
			env[lp.ValueVar] = types.KindFloat
		}
	}
	for _, lt := range s.Lets {
		env[lt.Var] = annotateExpr(prog, lt.Expr, env)
	}
	for _, k := range s.Keys {
		annotateExpr(prog, k, env)
	}
	if s.Cond != nil {
		annotateExpr(prog, s.Cond, env)
	}
	annotateExpr(prog, s.Delta, env)
}

// annotateExpr fills Type fields bottom-up and returns the expression's
// kind.
func annotateExpr(prog *Program, e Expr, env map[algebra.Var]types.Kind) types.Kind {
	switch e := e.(type) {
	case *Const:
		return e.Value.Kind()
	case *VarRef:
		e.Type = env[e.Name]
		return e.Type
	case *Lookup:
		for _, k := range e.Keys {
			annotateExpr(prog, k, env)
		}
		e.Type = types.KindFloat
		return e.Type
	case *Arith:
		l := annotateExpr(prog, e.L, env)
		r := annotateExpr(prog, e.R, env)
		e.Type = arithKind(l, r)
		return e.Type
	case *CmpE:
		annotateExpr(prog, e.L, env)
		annotateExpr(prog, e.R, env)
		return types.KindInt
	}
	return types.KindNull
}
