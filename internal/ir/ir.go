// Package ir defines the trigger-program intermediate representation the
// recursive compiler emits: per-event handlers made of statements that add
// a delta expression into a map entry, optionally under foreach loops that
// enumerate slices of other maps. The runtime executes programs either by
// walking this IR or through pre-compiled closures; internal/codegen prints
// a program as standalone Go source (the paper emits C++).
package ir

import (
	"fmt"
	"strings"

	"dbtoaster/internal/algebra"
	"dbtoaster/internal/types"
)

// Program is the full compiled artifact for one standing query.
type Program struct {
	QueryName string
	SQL       string

	// Maps are all materialized view maps, including the result maps,
	// keyed by name; MapOrder lists names in creation order.
	Maps     map[string]*MapDecl
	MapOrder []string

	// Triggers hold the event handlers, one per (relation, insert/delete).
	Triggers []*Trigger
}

// MapDecl declares one in-memory map.
type MapDecl struct {
	Name string
	// Keys are the canonical key variable names (k0, k1, ... or the
	// query's group variables for result maps).
	Keys []algebra.Var
	// Definition is the closed-form defining query: an AggSum over base
	// relations whose group variables are exactly Keys. Map-invariant
	// tests evaluate it with the oracle after every event.
	Definition *algebra.AggSum
	// Level is the recursion depth at which the map was introduced
	// (0 = result map of the standing query).
	Level int
	// Sorted requests a sorted mirror (order-statistic treap) so the
	// runtime can answer extremum and threshold range reads.
	Sorted bool
	// KeyKinds[i] is the statically inferred kind of key column i, filled
	// by InferTypes from the catalog and the map's defining algebra. Nil
	// on untyped programs; an entry may be KindNull when inference found
	// conflicting kinds for a position (the runtime then falls back to
	// generic storage for the map).
	KeyKinds []types.Kind
	// ValueKind is the inferred kind of the aggregate value: KindInt when
	// every contribution to the sum is integral, KindFloat otherwise,
	// KindNull on untyped programs. Storage accumulates in float64 either
	// way (lookups read as float, matching the generic engine); the
	// annotation types generated code and result rendering.
	ValueKind types.Kind
}

// Arity returns the number of key columns.
func (m *MapDecl) Arity() int { return len(m.Keys) }

// Trigger is the handler for one event type on one relation.
type Trigger struct {
	Relation string
	Insert   bool
	Params   []algebra.Var
	Stmts    []*Stmt
	// ParamKinds[i] is the catalog kind of the i-th event column, filled
	// by InferTypes (nil on untyped programs).
	ParamKinds []types.Kind
}

// Name renders "+R" / "-R".
func (t *Trigger) Name() string {
	if t.Insert {
		return "+" + t.Relation
	}
	return "-" + t.Relation
}

// Stmt adds Delta into Target[Keys] for every binding of its loops that
// passes Cond. Lets are scalar bindings evaluated after loop variables are
// bound (in order), before Keys/Cond/Delta.
type Stmt struct {
	Target string
	Keys   []Expr
	Loops  []Loop
	Lets   []Let
	Cond   Expr // nil means always
	Delta  Expr
	// Level is the target map's recursion level; the engine orders
	// statements by ascending level so every RHS reads pre-state values.
	Level int
}

// Loop enumerates the entries of a map slice: key positions with a non-nil
// Bound expression are fixed; the others bind the corresponding FreeVars
// entry. ValueVar, when non-empty, binds the entry's value.
type Loop struct {
	Map      string
	Bound    []Expr // len = map arity; nil = free position
	FreeVars []algebra.Var
	ValueVar algebra.Var
}

// Let binds Var to the value of Expr.
type Let struct {
	Var  algebra.Var
	Expr Expr
}

// Expr is a scalar runtime expression. Kind reports the statically
// inferred result type (KindNull until InferTypes has annotated the
// program — consumers must treat KindNull as "unknown" and fall back to
// dynamic evaluation).
type Expr interface {
	fmt.Stringer
	exprNode()
	Kind() types.Kind
}

// Const is a literal value.
type Const struct{ Value types.Value }

// VarRef reads a trigger parameter, loop variable, or let binding.
type VarRef struct {
	Name algebra.Var
	// Type is the variable's inferred kind (filled by InferTypes).
	Type types.Kind
}

// Lookup reads Map[Keys] (0 when absent). A zero-key lookup reads a
// scalar map.
type Lookup struct {
	Map  string
	Keys []Expr
	// Type is the lookup's result kind. The runtime reads every map value
	// as float, so InferTypes always annotates KindFloat.
	Type types.Kind
}

// Arith combines two expressions with +, -, *, or /.
type Arith struct {
	Op   byte
	L, R Expr
	// Type is the result kind under the runtime's numeric promotion:
	// int op int stays int (including /, which truncates), anything else
	// is float.
	Type types.Kind
}

// CmpE is a comparison yielding 1 or 0.
type CmpE struct {
	Op   algebra.CmpOp
	L, R Expr
}

func (*Const) exprNode()  {}
func (*VarRef) exprNode() {}
func (*Lookup) exprNode() {}
func (*Arith) exprNode()  {}
func (*CmpE) exprNode()   {}

// Kind implements Expr: a constant's kind is its value's kind.
func (c *Const) Kind() types.Kind { return c.Value.Kind() }

// Kind implements Expr.
func (v *VarRef) Kind() types.Kind { return v.Type }

// Kind implements Expr.
func (l *Lookup) Kind() types.Kind { return l.Type }

// Kind implements Expr.
func (a *Arith) Kind() types.Kind { return a.Type }

// Kind implements Expr: comparisons always yield the integers 1 or 0.
func (c *CmpE) Kind() types.Kind { return types.KindInt }

func (c *Const) String() string  { return c.Value.String() }
func (v *VarRef) String() string { return v.Name }
func (l *Lookup) String() string {
	parts := make([]string, len(l.Keys))
	for i, k := range l.Keys {
		parts[i] = k.String()
	}
	return l.Map + "[" + strings.Join(parts, ",") + "]"
}
func (a *Arith) String() string {
	return "(" + a.L.String() + " " + string(a.Op) + " " + a.R.String() + ")"
}
func (c *CmpE) String() string {
	return "(" + c.L.String() + " " + c.Op.String() + " " + c.R.String() + ")"
}

// String renders the statement in the paper's pseudo-code style.
func (s *Stmt) String() string {
	var b strings.Builder
	for _, lp := range s.Loops {
		fmt.Fprintf(&b, "foreach (%s) in %s", strings.Join(lp.freeNames(), ","), lp.sliceString())
		b.WriteString(": ")
	}
	for _, lt := range s.Lets {
		fmt.Fprintf(&b, "let %s = %s; ", lt.Var, lt.Expr)
	}
	if s.Cond != nil {
		fmt.Fprintf(&b, "if %s: ", s.Cond)
	}
	keys := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		keys[i] = k.String()
	}
	target := s.Target
	if len(keys) > 0 {
		target += "[" + strings.Join(keys, ",") + "]"
	}
	fmt.Fprintf(&b, "%s += %s", target, s.Delta)
	return b.String()
}

func (lp Loop) freeNames() []string {
	var out []string
	for _, v := range lp.FreeVars {
		if v != "" {
			out = append(out, v)
		}
	}
	return out
}

func (lp Loop) sliceString() string {
	parts := make([]string, len(lp.Bound))
	for i, b := range lp.Bound {
		if b != nil {
			parts[i] = b.String()
		} else {
			parts[i] = lp.FreeVars[i]
		}
	}
	return lp.Map + "[" + strings.Join(parts, ",") + "]"
}

// String renders the trigger.
func (t *Trigger) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "on %s(%s):\n", t.Name(), strings.Join(t.Params, ", "))
	for _, s := range t.Stmts {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}

// Trigger finds the handler for an event; nil when the event cannot affect
// the query (no statements were generated).
func (p *Program) Trigger(rel string, insert bool) *Trigger {
	for _, t := range p.Triggers {
		if strings.EqualFold(t.Relation, rel) && t.Insert == insert {
			return t
		}
	}
	return nil
}

// SortStmts orders every trigger's statements so that a statement reading a
// map runs before any statement updating that map: every right-hand side
// then sees pre-state values, which is what the delta rule Δ(a·b) =
// Δa·b + a·Δb + Δa·Δb requires. Ordering is a stable topological sort of
// the reads-target relation with the recursion level as tie-break; a read/
// write cycle (which the supported query class cannot produce) is an error.
func (p *Program) SortStmts() error {
	for _, t := range p.Triggers {
		sorted, err := topoSort(t)
		if err != nil {
			return err
		}
		t.Stmts = sorted
		if err := checkReadBeforeWrite(t); err != nil {
			return err
		}
	}
	return nil
}

func topoSort(t *Trigger) ([]*Stmt, error) {
	n := len(t.Stmts)
	// edge i→j when statement i must precede j (i reads j's target).
	succ := make([][]int, n)
	indeg := make([]int, n)
	reads := make([]map[string]bool, n)
	for i, s := range t.Stmts {
		reads[i] = map[string]bool{}
		collectReads(s, reads[i])
	}
	for i, si := range t.Stmts {
		for j, sj := range t.Stmts {
			if i == j || si.Target == sj.Target {
				continue
			}
			if reads[i][sj.Target] {
				succ[i] = append(succ[i], j)
				indeg[j]++
			}
		}
	}
	// Kahn's algorithm; among ready statements pick lowest level, then the
	// original position, for stable deterministic output.
	order := make([]int, 0, n)
	used := make([]bool, n)
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if used[i] || indeg[i] != 0 {
				continue
			}
			if best == -1 || t.Stmts[i].Level < t.Stmts[best].Level {
				best = i
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("ir: trigger %s has a read/write cycle between map updates", t.Name())
		}
		used[best] = true
		order = append(order, best)
		for _, j := range succ[best] {
			indeg[j]--
		}
	}
	out := make([]*Stmt, n)
	for i, idx := range order {
		out[i] = t.Stmts[idx]
	}
	return out, nil
}

// checkReadBeforeWrite verifies no statement reads a map that an earlier
// statement in the same trigger has already written: pre-state semantics.
func checkReadBeforeWrite(t *Trigger) error {
	written := map[string]bool{}
	for _, s := range t.Stmts {
		reads := map[string]bool{}
		collectReads(s, reads)
		for m := range reads {
			if written[m] && m != s.Target {
				return fmt.Errorf("ir: trigger %s reads %s after it was updated", t.Name(), m)
			}
		}
		written[s.Target] = true
	}
	return nil
}

func collectReads(s *Stmt, set map[string]bool) {
	for _, lp := range s.Loops {
		set[lp.Map] = true
		for _, b := range lp.Bound {
			collectExprReads(b, set)
		}
	}
	for _, lt := range s.Lets {
		collectExprReads(lt.Expr, set)
	}
	for _, k := range s.Keys {
		collectExprReads(k, set)
	}
	collectExprReads(s.Cond, set)
	collectExprReads(s.Delta, set)
}

func collectExprReads(e Expr, set map[string]bool) {
	switch e := e.(type) {
	case nil:
	case *Lookup:
		set[e.Map] = true
		for _, k := range e.Keys {
			collectExprReads(k, set)
		}
	case *Arith:
		collectExprReads(e.L, set)
		collectExprReads(e.R, set)
	case *CmpE:
		collectExprReads(e.L, set)
		collectExprReads(e.R, set)
	}
}

// String renders the whole program: map declarations then triggers.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- program %s\n", p.QueryName)
	for _, name := range p.MapOrder {
		m := p.Maps[name]
		sorted := ""
		if m.Sorted {
			sorted = " (sorted)"
		}
		fmt.Fprintf(&b, "map %s[%s]%s := %s\n", m.Name, strings.Join(m.Keys, ","), sorted, m.Definition)
	}
	for _, t := range p.Triggers {
		b.WriteString(t.String())
	}
	return b.String()
}
