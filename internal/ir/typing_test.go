package ir

import (
	"testing"

	"dbtoaster/internal/algebra"
	"dbtoaster/internal/schema"
	"dbtoaster/internal/types"
)

func typingCatalog() *schema.Catalog {
	return schema.NewCatalog(
		schema.NewRelation("R", "A:int", "B:float"),
		schema.NewRelation("S", "A:float", "C:int"),
	)
}

func TestInferMapKindsFromCatalogAndLifts(t *testing.T) {
	cat := typingCatalog()
	decl := &MapDecl{
		Name: "m1",
		Keys: []algebra.Var{"@r_a", "@r_b", "v_int", "v_float", "v_div"},
		Definition: &algebra.AggSum{
			GroupVars: []algebra.Var{"@r_a", "@r_b", "v_int", "v_float", "v_div"},
			Body: &algebra.Prod{Factors: []algebra.Term{
				algebra.NewRel("R", "@r_a", "@r_b"),
				// chained lifts: v_int feeds v_div, so inference needs the
				// fixed point, not one pass.
				&algebra.Lift{Var: "v_div", Expr: &algebra.VArith{Op: '/',
					L: &algebra.VVar{Name: "v_int"}, R: &algebra.VConst{Value: types.NewInt(2)}}},
				&algebra.Lift{Var: "v_int", Expr: &algebra.VArith{Op: '*',
					L: &algebra.VVar{Name: "@r_a"}, R: &algebra.VConst{Value: types.NewInt(3)}}},
				&algebra.Lift{Var: "v_float", Expr: &algebra.VArith{Op: '+',
					L: &algebra.VVar{Name: "@r_a"}, R: &algebra.VVar{Name: "@r_b"}}},
			}},
		},
	}
	if err := inferMapKinds(decl, cat); err != nil {
		t.Fatal(err)
	}
	want := []types.Kind{
		types.KindInt,   // catalog column
		types.KindFloat, // catalog column
		types.KindInt,   // int * int
		types.KindFloat, // int + float promotes
		types.KindInt,   // int / int truncates (types.Div)
	}
	for i, k := range want {
		if decl.KeyKinds[i] != k {
			t.Errorf("KeyKinds[%d] = %v, want %v", i, decl.KeyKinds[i], k)
		}
	}
	if decl.ValueKind != types.KindInt {
		t.Errorf("ValueKind = %v, want int (pure multiplicity)", decl.ValueKind)
	}
}

func TestInferMapKindsConflictStaysUnknown(t *testing.T) {
	cat := typingCatalog()
	// @x is int in R's binding and float in S's: the physical layouts would
	// disagree, so the position must be annotated unknown.
	decl := &MapDecl{
		Name: "m1",
		Keys: []algebra.Var{"@x"},
		Definition: &algebra.AggSum{
			GroupVars: []algebra.Var{"@x"},
			Body: &algebra.Prod{Factors: []algebra.Term{
				algebra.NewRel("R", "@x", "@rb"),
				algebra.NewRel("S", "@x", "@sc"),
			}},
		},
	}
	if err := inferMapKinds(decl, cat); err != nil {
		t.Fatal(err)
	}
	if decl.KeyKinds[0] != types.KindNull {
		t.Errorf("conflicting key kind = %v, want unknown", decl.KeyKinds[0])
	}
}

func TestInferMapKindsFloatValue(t *testing.T) {
	cat := typingCatalog()
	decl := &MapDecl{
		Name: "m1",
		Keys: []algebra.Var{"@r_a"},
		Definition: &algebra.AggSum{
			GroupVars: []algebra.Var{"@r_a"},
			Body: &algebra.Prod{Factors: []algebra.Term{
				algebra.NewRel("R", "@r_a", "@r_b"),
				&algebra.Val{Expr: &algebra.VVar{Name: "@r_b"}},
			}},
		},
	}
	if err := inferMapKinds(decl, cat); err != nil {
		t.Fatal(err)
	}
	if decl.ValueKind != types.KindFloat {
		t.Errorf("ValueKind = %v, want float (float measure)", decl.ValueKind)
	}
}

func TestInferTypesAnnotatesTriggers(t *testing.T) {
	cat := typingCatalog()
	m1 := &MapDecl{
		Name: "m1",
		Keys: []algebra.Var{"@r_a"},
		Definition: &algebra.AggSum{
			GroupVars: []algebra.Var{"@r_a"},
			Body:      algebra.NewRel("R", "@r_a", "@r_b"),
		},
	}
	lookup := &Lookup{Map: "m1", Keys: []Expr{&VarRef{Name: "@r_a"}}}
	delta := &Arith{Op: '*', L: &VarRef{Name: "@r_b"}, R: lookup}
	keyRef := &VarRef{Name: "@r_a"}
	prog := &Program{
		Maps:     map[string]*MapDecl{"m1": m1},
		MapOrder: []string{"m1"},
		Triggers: []*Trigger{{
			Relation: "R", Insert: true,
			Params: []algebra.Var{"@r_a", "@r_b"},
			Stmts: []*Stmt{{
				Target: "m1",
				Keys:   []Expr{keyRef},
				Delta:  delta,
			}},
		}},
	}
	if err := InferTypes(prog, cat); err != nil {
		t.Fatal(err)
	}
	tr := prog.Triggers[0]
	if len(tr.ParamKinds) != 2 || tr.ParamKinds[0] != types.KindInt || tr.ParamKinds[1] != types.KindFloat {
		t.Errorf("ParamKinds = %v, want [int float]", tr.ParamKinds)
	}
	if keyRef.Type != types.KindInt {
		t.Errorf("key VarRef type = %v, want int", keyRef.Type)
	}
	if lookup.Type != types.KindFloat {
		t.Errorf("Lookup type = %v, want float (runtime accumulates float64)", lookup.Type)
	}
	if delta.Type != types.KindFloat {
		t.Errorf("delta type = %v, want float (float * float-lookup)", delta.Type)
	}
}

func TestInferTypesUnknownRelation(t *testing.T) {
	cat := typingCatalog()
	prog := &Program{
		Maps:     map[string]*MapDecl{},
		Triggers: []*Trigger{{Relation: "Nope", Insert: true}},
	}
	if err := InferTypes(prog, cat); err == nil {
		t.Error("unknown trigger relation accepted")
	}
}
