package exec

import (
	"math/rand"
	"testing"

	"dbtoaster/internal/algebra"
	"dbtoaster/internal/schema"
	"dbtoaster/internal/store"
	"dbtoaster/internal/types"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	cat := schema.NewCatalog(
		schema.NewRelation("R", "A:int", "B:int"),
		schema.NewRelation("S", "B:int", "C:int"),
		schema.NewRelation("T", "C:int", "D:int"),
	)
	db := store.New(cat)
	ins := func(rel string, a, b int64) {
		if err := db.Insert(rel, types.Tuple{types.NewInt(a), types.NewInt(b)}); err != nil {
			t.Fatal(err)
		}
	}
	ins("R", 1, 10)
	ins("R", 2, 10)
	ins("R", 3, 20)
	ins("S", 10, 100)
	ins("S", 20, 200)
	ins("T", 100, 7)
	ins("T", 200, 9)
	return db
}

func paperTerm() algebra.Term {
	return algebra.NewProd(
		algebra.NewRel("R", "a", "b"),
		algebra.NewRel("S", "b", "c"),
		algebra.NewRel("T", "c", "d"),
		&algebra.Val{Expr: &algebra.VArith{Op: '*', L: &algebra.VVar{Name: "a"}, R: &algebra.VVar{Name: "d"}}},
	)
}

func TestRunMatchesOracle(t *testing.T) {
	db := testStore(t)
	got, err := RunScalar(db, paperTerm(), algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.EvalScalar(db, &algebra.AggSum{Body: paperTerm()}, algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want || got != 48 {
		t.Errorf("exec = %v, oracle = %v", got, want)
	}
}

func TestRunGrouped(t *testing.T) {
	db := testStore(t)
	term := algebra.NewProd(algebra.NewRel("R", "a", "b"), algebra.VarVal("a"))
	got, err := Run(db, term, []algebra.Var{"b"}, algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.Eval(db, term, []algebra.Var{"b"}, algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("groups %d vs %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %v: %v vs %v", types.DecodeKey(k), got[k], v)
		}
	}
}

func TestRunWithEnvBindings(t *testing.T) {
	db := testStore(t)
	// Delta-style evaluation: b bound to 10.
	term := algebra.NewProd(algebra.NewRel("S", "b", "c"), algebra.NewRel("T", "c", "d"), algebra.VarVal("d"))
	got, err := RunScalar(db, term, algebra.Env{"b": types.NewInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("bound eval = %v, want 7", got)
	}
}

func TestRunCrossJoinAndGuards(t *testing.T) {
	db := testStore(t)
	// R × T with an inequality guard (theta join through cross product).
	term := algebra.NewProd(
		algebra.NewRel("R", "a", "b"),
		algebra.NewRel("T", "c", "d"),
		&algebra.Cmp{Op: algebra.CmpLt, L: &algebra.VVar{Name: "a"}, R: &algebra.VVar{Name: "d"}},
	)
	got, err := RunScalar(db, term, algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.EvalScalar(db, &algebra.AggSum{Body: term}, algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("theta join = %v, oracle %v", got, want)
	}
}

func TestRunLift(t *testing.T) {
	db := testStore(t)
	// Group R rows by computed value a+1: count per lifted value.
	term := algebra.NewProd(
		algebra.NewRel("R", "a", "b"),
		&algebra.Lift{Var: "v", Expr: &algebra.VArith{Op: '+', L: &algebra.VVar{Name: "a"}, R: &algebra.VConst{Value: types.NewInt(1)}}},
	)
	got, err := Run(db, term, []algebra.Var{"v"}, algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("lift groups = %v", got)
	}
	k := types.EncodeKey(types.Tuple{types.NewInt(2)})
	if got[k] != 1 {
		t.Errorf("count at v=2: %v", got[k])
	}
}

func TestRunRepeatedVarScan(t *testing.T) {
	cat := schema.NewCatalog(schema.NewRelation("P", "X:int", "Y:int"))
	db := store.New(cat)
	for _, p := range [][2]int64{{1, 1}, {1, 2}, {3, 3}} {
		if err := db.Insert("P", types.Tuple{types.NewInt(p[0]), types.NewInt(p[1])}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := RunScalar(db, algebra.NewRel("P", "x", "x"), algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("P(x,x) = %v, want 2", got)
	}
}

func TestRunSelfJoin(t *testing.T) {
	db := testStore(t)
	term := algebra.NewProd(
		algebra.NewRel("R", "a1", "b"),
		algebra.NewRel("R", "a2", "b"),
		&algebra.Val{Expr: &algebra.VArith{Op: '*', L: &algebra.VVar{Name: "a1"}, R: &algebra.VVar{Name: "a2"}}},
	)
	got, err := RunScalar(db, term, algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.EvalScalar(db, &algebra.AggSum{Body: term}, algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("self join = %v, oracle %v", got, want)
	}
}

// TestRandomTermsAgainstOracle cross-checks the executor against the
// tuple-at-a-time oracle on randomly built conjunctive terms.
func TestRandomTermsAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cat := schema.NewCatalog(
		schema.NewRelation("R", "A:int", "B:int"),
		schema.NewRelation("S", "B:int", "C:int"),
		schema.NewRelation("T", "C:int", "D:int"),
	)
	for trial := 0; trial < 30; trial++ {
		db := store.New(cat)
		for i := 0; i < 30; i++ {
			rel := []string{"R", "S", "T"}[r.Intn(3)]
			tup := types.Tuple{types.NewInt(int64(r.Intn(5))), types.NewInt(int64(r.Intn(5)))}
			if r.Intn(5) == 0 {
				_ = db.Delete(rel, tup)
			} else {
				_ = db.Insert(rel, tup)
			}
		}
		// Random chain: R ⋈ S (on b) ⋈ T (on c), with random guard.
		factors := []algebra.Term{
			algebra.NewRel("R", "a", "b"),
			algebra.NewRel("S", "b", "c"),
		}
		if r.Intn(2) == 0 {
			factors = append(factors, algebra.NewRel("T", "c", "d"), algebra.VarVal("d"))
		}
		factors = append(factors, algebra.VarVal("a"))
		if r.Intn(2) == 0 {
			factors = append(factors, &algebra.Cmp{Op: algebra.CmpGte, L: &algebra.VVar{Name: "a"}, R: &algebra.VConst{Value: types.NewInt(int64(r.Intn(4)))}})
		}
		term := algebra.NewProd(factors...)
		gv := []algebra.Var{}
		if r.Intn(2) == 0 {
			gv = append(gv, "b")
		}
		got, err := Run(db, term, gv, algebra.Env{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := algebra.Eval(db, term, gv, algebra.Env{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d groups vs %d\nterm %s", trial, len(got), len(want), term)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("trial %d key %v: %v vs %v", trial, types.DecodeKey(k), got[k], v)
			}
		}
	}
}
