// Package exec implements a classic Volcano-style iterator query executor
// over the multiset store: scans, hash joins, filters, computed columns,
// and grouped aggregation, assembled by a small greedy planner from map-
// algebra terms. This is the "query plan interpreter" whose per-event
// overhead DBToaster eliminates; it powers the Naive (full re-evaluation)
// and FirstOrderIVM baseline engines and nothing in the compiled path.
package exec

import (
	"fmt"

	"dbtoaster/internal/algebra"
	"dbtoaster/internal/simplify"
	"dbtoaster/internal/store"
	"dbtoaster/internal/types"
)

// Row is a tuple with its ring weight (multiplicity × scalar factors).
type Row struct {
	Tuple  types.Tuple
	Weight float64
}

// Iterator is the Volcano operator interface.
type Iterator interface {
	// Open prepares the operator; Next returns rows until ok is false.
	Open() error
	Next() (Row, bool)
	// Schema lists the variable bound to each tuple position.
	Schema() []algebra.Var
}

// Run evaluates term grouped by groupVars against db, with env binding
// parameters (used by the first-order IVM engine for delta queries). The
// term is normalized to monomials; each is planned independently and the
// results accumulate.
func Run(db *store.Store, term algebra.Term, groupVars []algebra.Var, env algebra.Env) (algebra.GroupedResult, error) {
	bound := func(v algebra.Var) bool {
		if _, ok := env[v]; ok {
			return true
		}
		for _, g := range groupVars {
			if g == v {
				return true
			}
		}
		return false
	}
	out := algebra.GroupedResult{}
	for _, mono := range simplify.Simplify(term, bound) {
		if err := runMonomial(db, mono, groupVars, env, out); err != nil {
			return nil, err
		}
	}
	for k, v := range out {
		if v == 0 {
			delete(out, k)
		}
	}
	return out, nil
}

// RunScalar evaluates a closed term to a single value.
func RunScalar(db *store.Store, term algebra.Term, env algebra.Env) (float64, error) {
	res, err := Run(db, term, nil, env)
	if err != nil {
		return 0, err
	}
	return res[types.EncodeKey(nil)], nil
}

func runMonomial(db *store.Store, mono simplify.Monomial, groupVars []algebra.Var, env algebra.Env, out algebra.GroupedResult) error {
	factors, env := prebindGroupVars(mono.Factors, groupVars, env)
	plan, constWeight, err := Plan(db, factors, env)
	if err != nil {
		return err
	}
	if plan == nil {
		// Pure scalar monomial: one logical row.
		key := make(types.Tuple, len(groupVars))
		for i, g := range groupVars {
			v, ok := env[g]
			if !ok {
				return fmt.Errorf("exec: group variable %s unbound in scalar monomial", g)
			}
			key[i] = v
		}
		out[types.EncodeKey(key)] += constWeight
		return nil
	}
	if err := plan.Open(); err != nil {
		return err
	}
	schema := plan.Schema()
	pos := make([]int, len(groupVars))
	for i, g := range groupVars {
		pos[i] = -1
		for j, v := range schema {
			if v == g {
				pos[i] = j
			}
		}
	}
	key := make(types.Tuple, len(groupVars))
	for {
		row, ok := plan.Next()
		if !ok {
			break
		}
		for i, p := range pos {
			if p >= 0 {
				key[i] = row.Tuple[p]
			} else if v, ok := env[groupVars[i]]; ok {
				key[i] = v
			} else {
				return fmt.Errorf("exec: group variable %s not produced by plan", groupVars[i])
			}
		}
		out[types.EncodeKey(key)] += row.Weight * constWeight
	}
	return nil
}

// prebindGroupVars resolves group variables pinned by delta equalities or
// lifts over already-bound values (e.g. [s_c = @s_c] in a delta monomial):
// the variable enters the environment and the factor disappears, which both
// fixes the output key and pushes the selection into the scans.
func prebindGroupVars(factors []algebra.Term, groupVars []algebra.Var, env algebra.Env) ([]algebra.Term, algebra.Env) {
	isGroup := map[algebra.Var]bool{}
	for _, g := range groupVars {
		isGroup[g] = true
	}
	env = env.Clone()
	out := append([]algebra.Term{}, factors...)
	evaluable := func(e algebra.ValExpr) (types.Value, bool) {
		for _, v := range algebra.FreeVars(&algebra.Val{Expr: e}) {
			if _, ok := env[v]; !ok {
				return types.Null, false
			}
		}
		v, err := algebra.EvalVal(e, env)
		return v, err == nil
	}
	for {
		progressed := false
		for i, f := range out {
			var target algebra.Var
			var expr algebra.ValExpr
			switch f := f.(type) {
			case *algebra.Cmp:
				if f.Op != algebra.CmpEq {
					continue
				}
				if lv, ok := f.L.(*algebra.VVar); ok {
					target, expr = lv.Name, f.R
				}
				if rv, ok := f.R.(*algebra.VVar); ok {
					if _, bound := env[target]; target == "" || !isGroup[target] || bound {
						target, expr = rv.Name, f.L
					}
				}
			case *algebra.Lift:
				target, expr = f.Var, f.Expr
			default:
				continue
			}
			if target == "" || !isGroup[target] {
				continue
			}
			if _, bound := env[target]; bound {
				continue
			}
			v, ok := evaluable(expr)
			if !ok {
				continue
			}
			env[target] = v
			out = append(out[:i], out[i+1:]...)
			progressed = true
			break
		}
		if !progressed {
			return out, env
		}
	}
}

// Plan builds a left-deep iterator tree for a monomial's factors: scans
// joined greedily (hash joins on shared variables, cross joins otherwise),
// guards applied as soon as their variables are bound. The constant weight
// of parameter-only factors is returned separately; a nil iterator means
// the monomial had no relation atoms.
func Plan(db *store.Store, factors []algebra.Term, env algebra.Env) (Iterator, float64, error) {
	var rels []*algebra.Rel
	var guards []algebra.Term
	constWeight := 1.0
	for _, f := range factors {
		switch f := f.(type) {
		case *algebra.Rel:
			rels = append(rels, f)
		case *algebra.Val, *algebra.Cmp, *algebra.Lift:
			guards = append(guards, f)
		case *algebra.Exists, *algebra.ExistsDelta:
			// Decorrelated EXISTS indicator: evaluated per binding of its
			// keys by a recursive sub-plan over the subquery body.
			guards = append(guards, f)
		case *algebra.AggSum:
			return nil, 0, fmt.Errorf("exec: nested AggSum not supported in plans (got %s)", f)
		default:
			return nil, 0, fmt.Errorf("exec: cannot plan factor %s", f)
		}
	}
	if len(rels) == 0 {
		// All guards must be evaluable from env alone.
		for _, g := range guards {
			w, err := guardWeight(db, g, env)
			if err != nil {
				return nil, 0, err
			}
			constWeight *= w
		}
		return nil, constWeight, nil
	}

	// Greedy left-deep join order: start from the first scan, prefer
	// joins that share variables with the current prefix.
	used := make([]bool, len(rels))
	cur := Iterator(newScan(db, rels[0], env))
	used[0] = true
	attach := func(it Iterator) (Iterator, error) {
		return applyReadyGuards(db, it, &guards, env)
	}
	var err error
	cur, err = attach(cur)
	if err != nil {
		return nil, 0, err
	}
	for n := 1; n < len(rels); n++ {
		pick := -1
		var shared []algebra.Var
		for i, r := range rels {
			if used[i] {
				continue
			}
			sv := sharedVars(cur.Schema(), r.Vars)
			if len(sv) > 0 {
				pick, shared = i, sv
				break
			}
			if pick == -1 {
				pick = i
			}
		}
		right := newScan(db, rels[pick], env)
		used[pick] = true
		if len(shared) > 0 {
			cur = newHashJoin(cur, right, shared)
		} else {
			cur = newCrossJoin(cur, right)
		}
		cur, err = attach(cur)
		if err != nil {
			return nil, 0, err
		}
	}
	if len(guards) > 0 {
		return nil, 0, fmt.Errorf("exec: guard %s has unbound variables", guards[0])
	}
	return cur, constWeight, nil
}

func guardWeight(db *store.Store, g algebra.Term, env algebra.Env) (float64, error) {
	switch g := g.(type) {
	case *algebra.Val:
		v, err := algebra.EvalVal(g.Expr, env)
		if err != nil {
			return 0, err
		}
		return v.Float(), nil
	case *algebra.Cmp:
		l, err := algebra.EvalVal(g.L, env)
		if err != nil {
			return 0, err
		}
		r, err := algebra.EvalVal(g.R, env)
		if err != nil {
			return 0, err
		}
		if g.Op.Eval(l, r) {
			return 1, nil
		}
		return 0, nil
	case *algebra.Exists, *algebra.ExistsDelta:
		return existsWeight(db, g, env)
	}
	return 0, fmt.Errorf("exec: guard %s not evaluable from parameters", g)
}

// existsWeight evaluates an EXISTS indicator with its keys bound by env: the
// subquery body is planned recursively and reduced to its count. A plain
// Exists yields the 0/1 indicator; an ExistsDelta yields the change of the
// indicator under the event's body delta (−1, 0, or +1).
func existsWeight(db *store.Store, g algebra.Term, env algebra.Env) (float64, error) {
	ind := func(c float64) float64 {
		if c > 0 {
			return 1
		}
		return 0
	}
	switch g := g.(type) {
	case *algebra.Exists:
		c, err := RunScalar(db, g.Body, env)
		if err != nil {
			return 0, err
		}
		return ind(c), nil
	case *algebra.ExistsDelta:
		pre, err := RunScalar(db, g.Body, env)
		if err != nil {
			return 0, err
		}
		post, err := RunScalar(db, algebra.NewSum(g.Body, g.DBody), env)
		if err != nil {
			return 0, err
		}
		return ind(post) - ind(pre), nil
	}
	return 0, fmt.Errorf("exec: %s is not an EXISTS indicator", g)
}

// applyReadyGuards wraps it with Filter/Extend/Scale operators for every
// guard whose variables are now bound (schema + env). Lifts may bind new
// columns, which can make further guards ready, so this iterates.
func applyReadyGuards(db *store.Store, it Iterator, guards *[]algebra.Term, env algebra.Env) (Iterator, error) {
	for {
		progressed := false
		rest := (*guards)[:0]
		for _, g := range *guards {
			if l, ok := g.(*algebra.Lift); ok {
				if !varsAvailable(freeOf(&algebra.Val{Expr: l.Expr}), it.Schema(), env) {
					rest = append(rest, g)
					continue
				}
				if hasVar(it.Schema(), l.Var) {
					// Already a column: equality filter.
					it = newFilter(it, &algebra.Cmp{Op: algebra.CmpEq, L: &algebra.VVar{Name: l.Var}, R: l.Expr}, env)
				} else if _, bound := env[l.Var]; bound {
					it = newFilter(it, &algebra.Cmp{Op: algebra.CmpEq, L: &algebra.VVar{Name: l.Var}, R: l.Expr}, env)
				} else {
					it = newExtend(it, l.Var, l.Expr, env)
				}
				progressed = true
				continue
			}
			if !varsAvailable(freeOf(g), it.Schema(), env) {
				rest = append(rest, g)
				continue
			}
			switch g := g.(type) {
			case *algebra.Cmp:
				it = newFilter(it, g, env)
			case *algebra.Val:
				it = newScale(it, g.Expr, env)
			case *algebra.Exists, *algebra.ExistsDelta:
				it = newExistsGuard(db, it, g, env)
			}
			progressed = true
		}
		*guards = rest
		if !progressed {
			return it, nil
		}
	}
}

func freeOf(t algebra.Term) []algebra.Var { return algebra.FreeVars(t) }

func varsAvailable(vars []algebra.Var, schema []algebra.Var, env algebra.Env) bool {
	for _, v := range vars {
		if !hasVar(schema, v) {
			if _, ok := env[v]; !ok {
				return false
			}
		}
	}
	return true
}

func hasVar(schema []algebra.Var, v algebra.Var) bool {
	for _, s := range schema {
		if s == v {
			return true
		}
	}
	return false
}

func sharedVars(schema []algebra.Var, vars []algebra.Var) []algebra.Var {
	var out []algebra.Var
	seen := map[algebra.Var]bool{}
	for _, v := range vars {
		if !seen[v] && hasVar(schema, v) {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
