package exec

import (
	"dbtoaster/internal/algebra"
	"dbtoaster/internal/store"
	"dbtoaster/internal/types"
)

// scan reads a base relation, binding its columns to the atom's variables.
// Repeated variables and variables bound in env become selection filters;
// the output schema carries each variable once.
type scan struct {
	db     *store.Store
	rel    *algebra.Rel
	env    algebra.Env
	schema []algebra.Var
	// outPos[i] is the source column of output position i.
	outPos []int
	// eqPairs are column pairs that must agree (repeated variables).
	eqPairs [][2]int
	// envChecks are (column, value) requirements from env bindings.
	envChecks []envCheck
	rows      []Row
	idx       int
}

type envCheck struct {
	col int
	val types.Value
}

func newScan(db *store.Store, rel *algebra.Rel, env algebra.Env) *scan {
	s := &scan{db: db, rel: rel, env: env}
	firstPos := map[algebra.Var]int{}
	for i, v := range rel.Vars {
		if val, bound := env[v]; bound {
			s.envChecks = append(s.envChecks, envCheck{col: i, val: val})
			continue
		}
		if j, seen := firstPos[v]; seen {
			s.eqPairs = append(s.eqPairs, [2]int{j, i})
			continue
		}
		firstPos[v] = i
		s.schema = append(s.schema, v)
		s.outPos = append(s.outPos, i)
	}
	return s
}

func (s *scan) Schema() []algebra.Var { return s.schema }

func (s *scan) Open() error {
	s.rows = s.rows[:0]
	s.idx = 0
	s.db.Scan(s.rel.Name, func(t types.Tuple, mult float64) {
		for _, c := range s.envChecks {
			if !t[c.col].Equal(c.val) {
				return
			}
		}
		for _, p := range s.eqPairs {
			if !t[p[0]].Equal(t[p[1]]) {
				return
			}
		}
		out := make(types.Tuple, len(s.outPos))
		for i, p := range s.outPos {
			out[i] = t[p]
		}
		s.rows = append(s.rows, Row{Tuple: out, Weight: mult})
	})
	return nil
}

func (s *scan) Next() (Row, bool) {
	if s.idx >= len(s.rows) {
		return Row{}, false
	}
	r := s.rows[s.idx]
	s.idx++
	return r, true
}

// hashJoin is an equi-join on shared variable names: build on the right,
// probe from the left. The output schema is left ++ (right minus shared).
type hashJoin struct {
	left, right Iterator
	shared      []algebra.Var
	schema      []algebra.Var
	leftKeyPos  []int
	rightKeyPos []int
	rightOutPos []int
	table       map[types.Key][]Row
	// probe state
	cur     Row
	matches []Row
	mi      int
	opened  bool
}

func newHashJoin(left, right Iterator, shared []algebra.Var) *hashJoin {
	j := &hashJoin{left: left, right: right, shared: shared}
	ls, rs := left.Schema(), right.Schema()
	j.schema = append(j.schema, ls...)
	for _, v := range shared {
		for i, s := range ls {
			if s == v {
				j.leftKeyPos = append(j.leftKeyPos, i)
				break
			}
		}
		for i, s := range rs {
			if s == v {
				j.rightKeyPos = append(j.rightKeyPos, i)
				break
			}
		}
	}
	for i, v := range rs {
		if !hasVar(shared, v) {
			j.schema = append(j.schema, v)
			j.rightOutPos = append(j.rightOutPos, i)
		}
	}
	return j
}

func (j *hashJoin) Schema() []algebra.Var { return j.schema }

func (j *hashJoin) Open() error {
	if err := j.right.Open(); err != nil {
		return err
	}
	j.table = make(map[types.Key][]Row)
	key := make(types.Tuple, len(j.rightKeyPos))
	for {
		r, ok := j.right.Next()
		if !ok {
			break
		}
		for i, p := range j.rightKeyPos {
			key[i] = r.Tuple[p]
		}
		k := types.EncodeKey(key)
		j.table[k] = append(j.table[k], r)
	}
	j.matches = nil
	j.mi = 0
	j.opened = true
	return j.left.Open()
}

func (j *hashJoin) Next() (Row, bool) {
	for {
		if j.mi < len(j.matches) {
			r := j.matches[j.mi]
			j.mi++
			out := make(types.Tuple, 0, len(j.schema))
			out = append(out, j.cur.Tuple...)
			for _, p := range j.rightOutPos {
				out = append(out, r.Tuple[p])
			}
			return Row{Tuple: out, Weight: j.cur.Weight * r.Weight}, true
		}
		l, ok := j.left.Next()
		if !ok {
			return Row{}, false
		}
		key := make(types.Tuple, len(j.leftKeyPos))
		for i, p := range j.leftKeyPos {
			key[i] = l.Tuple[p]
		}
		j.cur = l
		j.matches = j.table[types.EncodeKey(key)]
		j.mi = 0
	}
}

// crossJoin is the no-shared-variables fallback.
type crossJoin struct {
	left, right Iterator
	schema      []algebra.Var
	rightRows   []Row
	cur         Row
	ri          int
	haveCur     bool
}

func newCrossJoin(left, right Iterator) *crossJoin {
	return &crossJoin{left: left, right: right,
		schema: append(append([]algebra.Var{}, left.Schema()...), right.Schema()...)}
}

func (c *crossJoin) Schema() []algebra.Var { return c.schema }

func (c *crossJoin) Open() error {
	if err := c.right.Open(); err != nil {
		return err
	}
	c.rightRows = c.rightRows[:0]
	for {
		r, ok := c.right.Next()
		if !ok {
			break
		}
		c.rightRows = append(c.rightRows, r)
	}
	c.ri = 0
	c.haveCur = false
	return c.left.Open()
}

func (c *crossJoin) Next() (Row, bool) {
	for {
		if c.haveCur && c.ri < len(c.rightRows) {
			r := c.rightRows[c.ri]
			c.ri++
			out := make(types.Tuple, 0, len(c.schema))
			out = append(out, c.cur.Tuple...)
			out = append(out, r.Tuple...)
			return Row{Tuple: out, Weight: c.cur.Weight * r.Weight}, true
		}
		l, ok := c.left.Next()
		if !ok {
			return Row{}, false
		}
		c.cur = l
		c.ri = 0
		c.haveCur = true
	}
}

// exprEval compiles a scalar expression against a schema into a closure.
func exprEval(e algebra.ValExpr, schema []algebra.Var, env algebra.Env) func(types.Tuple) types.Value {
	switch e := e.(type) {
	case *algebra.VConst:
		v := e.Value
		return func(types.Tuple) types.Value { return v }
	case *algebra.VVar:
		for i, s := range schema {
			if s == e.Name {
				idx := i
				return func(t types.Tuple) types.Value { return t[idx] }
			}
		}
		v := env[e.Name]
		return func(types.Tuple) types.Value { return v }
	case *algebra.VArith:
		l := exprEval(e.L, schema, env)
		r := exprEval(e.R, schema, env)
		op := e.Op
		return func(t types.Tuple) types.Value {
			switch op {
			case '+':
				return types.Add(l(t), r(t))
			case '-':
				return types.Sub(l(t), r(t))
			case '*':
				return types.Mul(l(t), r(t))
			default:
				return types.Div(l(t), r(t))
			}
		}
	}
	return func(types.Tuple) types.Value { return types.Null }
}

// filter drops rows failing a comparison.
type filter struct {
	in   Iterator
	cmp  *algebra.Cmp
	env  algebra.Env
	l, r func(types.Tuple) types.Value
}

func newFilter(in Iterator, cmp *algebra.Cmp, env algebra.Env) *filter {
	return &filter{in: in, cmp: cmp, env: env}
}

func (f *filter) Schema() []algebra.Var { return f.in.Schema() }

func (f *filter) Open() error {
	f.l = exprEval(f.cmp.L, f.in.Schema(), f.env)
	f.r = exprEval(f.cmp.R, f.in.Schema(), f.env)
	return f.in.Open()
}

func (f *filter) Next() (Row, bool) {
	for {
		row, ok := f.in.Next()
		if !ok {
			return Row{}, false
		}
		if f.cmp.Op.Eval(f.l(row.Tuple), f.r(row.Tuple)) {
			return row, true
		}
	}
}

// extend appends a computed column (Lift).
type extend struct {
	in     Iterator
	v      algebra.Var
	expr   algebra.ValExpr
	env    algebra.Env
	schema []algebra.Var
	fn     func(types.Tuple) types.Value
}

func newExtend(in Iterator, v algebra.Var, expr algebra.ValExpr, env algebra.Env) *extend {
	return &extend{in: in, v: v, expr: expr, env: env,
		schema: append(append([]algebra.Var{}, in.Schema()...), v)}
}

func (e *extend) Schema() []algebra.Var { return e.schema }

func (e *extend) Open() error {
	e.fn = exprEval(e.expr, e.in.Schema(), e.env)
	return e.in.Open()
}

func (e *extend) Next() (Row, bool) {
	row, ok := e.in.Next()
	if !ok {
		return Row{}, false
	}
	out := make(types.Tuple, 0, len(e.schema))
	out = append(out, row.Tuple...)
	out = append(out, e.fn(row.Tuple))
	return Row{Tuple: out, Weight: row.Weight}, true
}

// existsGuard multiplies each row's weight by an EXISTS indicator whose
// keys are bound from the row's columns (falling back to env), evaluating
// the subquery body with a recursive sub-plan per distinct key binding.
// Results are memoized per Open: correlated EXISTS typically repeats the
// same key across many rows of the outer join.
type existsGuard struct {
	db    *store.Store
	in    Iterator
	guard algebra.Term // *algebra.Exists or *algebra.ExistsDelta
	env   algebra.Env
	vars  []algebra.Var // free vars of the guard, bound per row
	pos   []int         // schema position per var; -1 means env-bound
	memo  map[types.Key]float64
}

func newExistsGuard(db *store.Store, in Iterator, guard algebra.Term, env algebra.Env) *existsGuard {
	g := &existsGuard{db: db, in: in, guard: guard, env: env, vars: algebra.FreeVars(guard)}
	for _, v := range g.vars {
		p := -1
		for i, s := range in.Schema() {
			if s == v {
				p = i
				break
			}
		}
		g.pos = append(g.pos, p)
	}
	return g
}

func (g *existsGuard) Schema() []algebra.Var { return g.in.Schema() }

func (g *existsGuard) Open() error {
	g.memo = map[types.Key]float64{}
	// Probe the sub-plan once with null key bindings: planning failures are
	// structural (they depend on which variables are bound, never on their
	// values), so a successful probe means per-row evaluation cannot fail.
	env2 := g.env.Clone()
	for _, v := range g.vars {
		if _, ok := env2[v]; !ok {
			env2[v] = types.Null
		}
	}
	if _, err := existsWeight(g.db, g.guard, env2); err != nil {
		return err
	}
	return g.in.Open()
}

func (g *existsGuard) Next() (Row, bool) {
	key := make(types.Tuple, len(g.vars))
	for {
		row, ok := g.in.Next()
		if !ok {
			return Row{}, false
		}
		for i, p := range g.pos {
			if p >= 0 {
				key[i] = row.Tuple[p]
			} else {
				key[i] = g.env[g.vars[i]]
			}
		}
		k := types.EncodeKey(key)
		w, ok := g.memo[k]
		if !ok {
			env2 := g.env.Clone()
			for i, v := range g.vars {
				env2[v] = key[i]
			}
			// The Open-time probe established that evaluation cannot fail
			// with these variables bound.
			w, _ = existsWeight(g.db, g.guard, env2)
			g.memo[k] = w
		}
		if w == 0 {
			continue
		}
		row.Weight *= w
		return row, true
	}
}

// scale multiplies the row weight by a scalar expression (Val factors).
type scale struct {
	in   Iterator
	expr algebra.ValExpr
	env  algebra.Env
	fn   func(types.Tuple) types.Value
}

func newScale(in Iterator, expr algebra.ValExpr, env algebra.Env) *scale {
	return &scale{in: in, expr: expr, env: env}
}

func (s *scale) Schema() []algebra.Var { return s.in.Schema() }

func (s *scale) Open() error {
	s.fn = exprEval(s.expr, s.in.Schema(), s.env)
	return s.in.Open()
}

func (s *scale) Next() (Row, bool) {
	for {
		row, ok := s.in.Next()
		if !ok {
			return Row{}, false
		}
		w := s.fn(row.Tuple).Float()
		if w == 0 {
			continue
		}
		row.Weight *= w
		return row, true
	}
}
