package algebra

import (
	"testing"

	"dbtoaster/internal/schema"
	"dbtoaster/internal/store"
	"dbtoaster/internal/types"
)

func paperDB(t *testing.T) *store.Store {
	t.Helper()
	cat := schema.NewCatalog(
		schema.NewRelation("R", "A:int", "B:int"),
		schema.NewRelation("S", "B:int", "C:int"),
		schema.NewRelation("T", "C:int", "D:int"),
	)
	s := store.New(cat)
	ins := func(rel string, vals ...int64) {
		tup := make(types.Tuple, len(vals))
		for i, v := range vals {
			tup[i] = types.NewInt(v)
		}
		if err := s.Insert(rel, tup); err != nil {
			t.Fatal(err)
		}
	}
	// R = {(1,10),(2,10),(3,20)}, S = {(10,100),(20,200)}, T = {(100,7),(200,9)}
	ins("R", 1, 10)
	ins("R", 2, 10)
	ins("R", 3, 20)
	ins("S", 10, 100)
	ins("S", 20, 200)
	ins("T", 100, 7)
	ins("T", 200, 9)
	return s
}

// paperQuery is sum(A*D) from R,S,T where R.B=S.B and S.C=T.C as an algebra
// term: Sum{}( R(a,b) * S(b,c) * T(c,d) * a*d ).
func paperQuery() Term {
	return &AggSum{Body: NewProd(
		NewRel("R", "a", "b"),
		NewRel("S", "b", "c"),
		NewRel("T", "c", "d"),
		&Val{Expr: &VArith{Op: '*', L: &VVar{Name: "a"}, R: &VVar{Name: "d"}}},
	)}
}

func TestEvalPaperQuery(t *testing.T) {
	db := paperDB(t)
	// (1*7)+(2*7)+(3*9) = 7+14+27 = 48
	got, err := EvalScalar(db, paperQuery(), Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 48 {
		t.Errorf("sum(A*D) = %v, want 48", got)
	}
}

func TestEvalGrouped(t *testing.T) {
	db := paperDB(t)
	// Sum{b}( R(a,b) * a ): per-B sum of A → {10: 3, 20: 3}
	term := NewProd(NewRel("R", "a", "b"), VarVal("a"))
	res, err := Eval(db, term, []Var{"b"}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("groups = %d, want 2: %v", len(res), res)
	}
	k10 := types.EncodeKey(types.Tuple{types.NewInt(10)})
	k20 := types.EncodeKey(types.Tuple{types.NewInt(20)})
	if res[k10] != 3 || res[k20] != 3 {
		t.Errorf("grouped sums = %v", res)
	}
}

func TestEvalWithBoundEnv(t *testing.T) {
	db := paperDB(t)
	// qD[b] = Sum{b}( S(b,c) * T(c,d) * d ) with b pre-bound to 10 → 7.
	term := NewProd(NewRel("S", "b", "c"), NewRel("T", "c", "d"), VarVal("d"))
	res, err := Eval(db, term, []Var{"b"}, Env{"b": types.NewInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	k := types.EncodeKey(types.Tuple{types.NewInt(10)})
	if len(res) != 1 || res[k] != 7 {
		t.Errorf("qD[10] = %v", res)
	}
}

func TestEvalComparisonGuards(t *testing.T) {
	db := paperDB(t)
	// Count of R tuples with A >= 2: [a >= 2] * R(a,b)
	term := NewProd(
		&Cmp{Op: CmpGte, L: &VVar{Name: "a"}, R: &VConst{Value: types.NewInt(2)}},
		NewRel("R", "a", "b"),
	)
	got, err := EvalScalar(db, &AggSum{Body: term}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("count = %v, want 2", got)
	}
}

func TestEvalGuardBeforeBinderIsReordered(t *testing.T) {
	db := paperDB(t)
	// The guard [c > 100] precedes the relation that binds c; orderFactors
	// must defer it until c is bound.
	term := NewProd(
		&Cmp{Op: CmpGt, L: &VVar{Name: "c"}, R: &VConst{Value: types.NewInt(100)}},
		NewRel("S", "b", "c"),
	)
	got, err := EvalScalar(db, &AggSum{Body: term}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("count = %v, want 1", got)
	}
}

func TestEvalSum(t *testing.T) {
	db := paperDB(t)
	term := NewSum(
		NewProd(NewRel("R", "a", "b"), VarVal("a")),
		NewProd(NewRel("R", "a", "b"), VarVal("a")),
	)
	got, err := EvalScalar(db, &AggSum{Body: term}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 { // 2 * (1+2+3)
		t.Errorf("doubled sum = %v, want 12", got)
	}
}

func TestEvalNestedAggSum(t *testing.T) {
	db := paperDB(t)
	// Sum{}( R(a,b) * Sum{b}(S(b,c)) ) — for each R tuple, count of S
	// tuples with matching b: R(1,10),R(2,10) match 1 each, R(3,20) matches 1 → 3.
	inner := &AggSum{GroupVars: []Var{"b"}, Body: NewRel("S", "b", "c")}
	term := &AggSum{Body: NewProd(NewRel("R", "a", "b"), inner)}
	got, err := EvalScalar(db, term, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("nested = %v, want 3", got)
	}
}

func TestEvalRepeatedVarInRel(t *testing.T) {
	cat := schema.NewCatalog(schema.NewRelation("P", "X:int", "Y:int"))
	db := store.New(cat)
	for _, p := range [][2]int64{{1, 1}, {1, 2}, {3, 3}} {
		if err := db.Insert("P", types.Tuple{types.NewInt(p[0]), types.NewInt(p[1])}); err != nil {
			t.Fatal(err)
		}
	}
	// P(x,x) counts tuples with X = Y.
	got, err := EvalScalar(db, &AggSum{Body: NewRel("P", "x", "x")}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("P(x,x) count = %v, want 2", got)
	}
}

func TestEvalMultiplicities(t *testing.T) {
	cat := schema.NewCatalog(schema.NewRelation("R", "A:int"))
	db := store.New(cat)
	tup := types.Tuple{types.NewInt(5)}
	for i := 0; i < 3; i++ {
		if err := db.Insert("R", tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete("R", tup); err != nil {
		t.Fatal(err)
	}
	got, err := EvalScalar(db, &AggSum{Body: NewProd(NewRel("R", "a"), VarVal("a"))}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 { // multiplicity 2 × value 5
		t.Errorf("sum with multiplicity = %v, want 10", got)
	}
}

func TestEvalUnboundVarError(t *testing.T) {
	db := paperDB(t)
	if _, err := EvalScalar(db, &AggSum{Body: VarVal("nope")}, Env{}); err == nil {
		t.Error("unbound variable not reported")
	}
}

func TestEvalMapRefRejected(t *testing.T) {
	db := paperDB(t)
	if _, err := EvalScalar(db, &AggSum{Body: &MapRef{Name: "m"}}, Env{}); err == nil {
		t.Error("MapRef evaluation should fail")
	}
}

func TestEvalDivisionByZeroYieldsZero(t *testing.T) {
	db := paperDB(t)
	term := &Val{Expr: &VArith{Op: '/', L: &VConst{Value: types.NewInt(1)}, R: &VConst{Value: types.NewInt(0)}}}
	got, err := EvalScalar(db, &AggSum{Body: term}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("1/0 contributed %v, want 0", got)
	}
}

func TestEvalValArith(t *testing.T) {
	env := Env{"x": types.NewInt(6), "y": types.NewFloat(1.5)}
	expr := &VArith{Op: '+',
		L: &VArith{Op: '*', L: &VVar{Name: "x"}, R: &VVar{Name: "y"}},
		R: &VArith{Op: '-', L: &VConst{Value: types.NewInt(10)}, R: &VVar{Name: "x"}},
	}
	v, err := EvalVal(expr, env)
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 13 { // 6*1.5 + (10-6)
		t.Errorf("arith = %v, want 13", v)
	}
}
