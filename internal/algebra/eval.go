package algebra

import (
	"fmt"
	"sort"

	"dbtoaster/internal/types"
)

// DB provides multiset access to base relations. Implemented by the
// baseline engines' stores; the evaluator is the system's correctness
// oracle (it evaluates map-definition queries directly against base data)
// and the execution engine of the first-order IVM baseline.
type DB interface {
	// Scan calls f for every distinct tuple of the relation with its
	// multiplicity (always non-zero).
	Scan(rel string, f func(t types.Tuple, mult float64))
}

// Env binds variables to values during evaluation.
type Env map[Var]types.Value

// Clone copies the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// EvalVal evaluates a scalar expression under env. Unbound variables are an
// error (the translator and compiler guarantee binding order).
func EvalVal(expr ValExpr, env Env) (types.Value, error) {
	switch x := expr.(type) {
	case *VConst:
		return x.Value, nil
	case *VVar:
		v, ok := env[x.Name]
		if !ok {
			return types.Null, fmt.Errorf("algebra: unbound variable %s", x.Name)
		}
		return v, nil
	case *VArith:
		l, err := EvalVal(x.L, env)
		if err != nil {
			return types.Null, err
		}
		r, err := EvalVal(x.R, env)
		if err != nil {
			return types.Null, err
		}
		switch x.Op {
		case '+':
			return types.Add(l, r), nil
		case '-':
			return types.Sub(l, r), nil
		case '*':
			return types.Mul(l, r), nil
		case '/':
			return types.Div(l, r), nil
		}
		return types.Null, fmt.Errorf("algebra: bad arith op %q", x.Op)
	}
	return types.Null, fmt.Errorf("algebra: unknown value expr %T", expr)
}

// GroupedResult maps encoded group-variable tuples to aggregate values.
type GroupedResult map[types.Key]float64

// Eval evaluates term t against db under env, grouping by groupVars: the
// result maps each assignment of groupVars (those not already bound by env
// are enumerated; bound ones are fixed) to the sum of t's value over all
// assignments of its remaining free variables.
//
// Terms containing MapRef are not evaluable here (materialized maps live in
// the runtime); the translator's output and all map definitions are
// MapRef-free by construction.
func Eval(db DB, t Term, groupVars []Var, env Env) (GroupedResult, error) {
	res := GroupedResult{}
	err := enumerate(db, t, env, func(e Env, v float64) error {
		if v == 0 {
			return nil
		}
		key := make(types.Tuple, len(groupVars))
		for i, g := range groupVars {
			val, ok := e[g]
			if !ok {
				return fmt.Errorf("algebra: group variable %s unbound after evaluation", g)
			}
			key[i] = val
		}
		res[types.EncodeKey(key)] += v
		return nil
	})
	if err != nil {
		return nil, err
	}
	for k, v := range res {
		if v == 0 {
			delete(res, k)
		}
	}
	return res, nil
}

// EvalScalar evaluates a closed (no group vars) term to a single number.
func EvalScalar(db DB, t Term, env Env) (float64, error) {
	res, err := Eval(db, t, nil, env)
	if err != nil {
		return 0, err
	}
	return res[types.EncodeKey(nil)], nil
}

// enumerate produces (environment, value) pairs for t under env.
func enumerate(db DB, t Term, env Env, emit func(Env, float64) error) error {
	switch t := t.(type) {
	case *Rel:
		var err error
		db.Scan(t.Name, func(tuple types.Tuple, mult float64) {
			if err != nil {
				return
			}
			e2, ok := unify(env, t.Vars, tuple)
			if !ok {
				return
			}
			err = emit(e2, mult)
		})
		return err
	case *Val:
		v, err := EvalVal(t.Expr, env)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return emit(env, 0)
		}
		return emit(env, v.Float())
	case *Cmp:
		// An equality whose one side is a bare unbound variable is a binding
		// factor, mirroring the runtime's pending-equality machinery: [x = e]
		// binds x := e with weight 1 (CmpEq is null-safe, so the indicator is
		// true by construction for the bound value).
		if t.Op == CmpEq {
			if v, ok := bindableSide(t.L, t.R, env); ok {
				val, err := EvalVal(v.expr, env)
				if err != nil {
					return err
				}
				e2 := env.Clone()
				e2[v.target] = val
				return emit(e2, 1)
			}
		}
		l, err := EvalVal(t.L, env)
		if err != nil {
			return err
		}
		r, err := EvalVal(t.R, env)
		if err != nil {
			return err
		}
		if t.Op.Eval(l, r) {
			return emit(env, 1)
		}
		return nil
	case *Lift:
		v, err := EvalVal(t.Expr, env)
		if err != nil {
			return err
		}
		if cur, ok := env[t.Var]; ok {
			if cur.Equal(v) {
				return emit(env, 1)
			}
			return nil
		}
		e2 := env.Clone()
		e2[t.Var] = v
		return emit(e2, 1)
	case *Sum:
		for _, x := range t.Terms {
			if err := enumerate(db, x, env, emit); err != nil {
				return err
			}
		}
		return nil
	case *Prod:
		return enumProd(db, orderFactors(t.Factors, env), env, 1, emit)
	case *AggSum:
		grouped, err := Eval(db, t.Body, t.GroupVars, env)
		if err != nil {
			return err
		}
		return emitGroups(env, t.GroupVars, grouped, emit)
	case *Exists:
		grouped, err := Eval(db, t.Body, t.Keys, env)
		if err != nil {
			return err
		}
		weights := make(GroupedResult, len(grouped))
		for k, count := range grouped {
			if count > 0 {
				weights[k] = 1
			}
		}
		return emitGroups(env, t.Keys, weights, emit)
	case *ExistsDelta:
		pre, err := Eval(db, t.Body, t.Keys, env)
		if err != nil {
			return err
		}
		post, err := Eval(db, NewSum(t.Body, t.DBody), t.Keys, env)
		if err != nil {
			return err
		}
		ind := func(c float64) float64 {
			if c > 0 {
				return 1
			}
			return 0
		}
		weights := GroupedResult{}
		for k, c := range post {
			weights[k] = ind(c)
		}
		for k, c := range pre {
			weights[k] -= ind(c)
		}
		for k, w := range weights {
			if w == 0 {
				delete(weights, k)
			}
		}
		return emitGroups(env, t.Keys, weights, emit)
	case *MapRef:
		return fmt.Errorf("algebra: cannot evaluate MapRef %s against base data", t)
	}
	return fmt.Errorf("algebra: unknown term %T", t)
}

// emitGroups emits one (environment, weight) pair per grouped entry,
// unifying the group variables against the decoded key tuple. Deterministic
// iteration keeps error behaviour stable in tests.
func emitGroups(env Env, groupVars []Var, grouped GroupedResult, emit func(Env, float64) error) error {
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	for _, ks := range keys {
		k := types.Key(ks)
		tuple := types.DecodeKey(k)
		e2, ok := unify(env, groupVars, tuple)
		if !ok {
			continue
		}
		if err := emit(e2, grouped[k]); err != nil {
			return err
		}
	}
	return nil
}

// eqBinding is an equality factor's binding action: set target := expr.
type eqBinding struct {
	target Var
	expr   ValExpr
}

// bindableSide reports whether an equality [l = r] can act as a binder under
// env: one side is a bare unbound variable and the other side is fully
// evaluable.
func bindableSide(l, r ValExpr, env Env) (eqBinding, bool) {
	unbound := func(e ValExpr) (Var, bool) {
		v, ok := e.(*VVar)
		if !ok {
			return "", false
		}
		_, bound := env[v.Name]
		return v.Name, !bound
	}
	evaluable := func(e ValExpr) bool {
		for _, v := range FreeVars(&Val{Expr: e}) {
			if _, ok := env[v]; !ok {
				return false
			}
		}
		return true
	}
	if v, ok := unbound(l); ok && evaluable(r) {
		return eqBinding{target: v, expr: r}, true
	}
	if v, ok := unbound(r); ok && evaluable(l) {
		return eqBinding{target: v, expr: l}, true
	}
	return eqBinding{}, false
}

func enumProd(db DB, fs []Term, env Env, acc float64, emit func(Env, float64) error) error {
	if acc == 0 {
		return nil
	}
	if len(fs) == 0 {
		return emit(env, acc)
	}
	return enumerate(db, fs[0], env, func(e Env, v float64) error {
		return enumProd(db, fs[1:], e, acc*v, emit)
	})
}

// orderFactors sequences product factors so that every Val/Cmp evaluates
// only after the variables it needs are bound: binding factors (relations,
// nested AggSums) are emitted greedily, each followed by all guard factors
// whose variables have become available. A Lift is a guard for its
// expression's variables but a binder for its own variable.
func orderFactors(fs []Term, env Env) []Term {
	bound := map[Var]bool{}
	for v := range env {
		bound[v] = true
	}
	var binders, guards []Term
	for _, f := range fs {
		switch f.(type) {
		case *Rel, *AggSum, *MapRef, *Exists, *ExistsDelta:
			binders = append(binders, f)
		default:
			guards = append(guards, f)
		}
	}
	out := make([]Term, 0, len(fs))
	pending := guards
	allBound := func(vs []Var) bool {
		for _, v := range vs {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	// ready reports whether guard g can evaluate now, and which variable (if
	// any) it binds: a Lift binds its variable once its expression's
	// variables are bound; an equality [x = e] with bare unbound x and bound
	// e binds x (the evaluator's pending-equality rule).
	ready := func(g Term) (bool, Var) {
		switch g := g.(type) {
		case *Lift:
			return allBound(FreeVars(&Val{Expr: g.Expr})), g.Var
		case *Cmp:
			if allBound(FreeVars(g)) {
				return true, ""
			}
			if g.Op != CmpEq {
				return false, ""
			}
			if v, ok := g.L.(*VVar); ok && !bound[v.Name] && allBound(FreeVars(&Val{Expr: g.R})) {
				return true, v.Name
			}
			if v, ok := g.R.(*VVar); ok && !bound[v.Name] && allBound(FreeVars(&Val{Expr: g.L})) {
				return true, v.Name
			}
			return false, ""
		default:
			return allBound(FreeVars(g)), ""
		}
	}
	takeReady := func() {
		for {
			progressed := false
			rest := pending[:0]
			for _, g := range pending {
				ok, binds := ready(g)
				if ok {
					out = append(out, g)
					if binds != "" {
						bound[binds] = true
					}
					progressed = true
				} else {
					rest = append(rest, g)
				}
			}
			pending = rest
			if !progressed {
				return
			}
		}
	}
	takeReady()
	for _, b := range binders {
		out = append(out, b)
		for _, v := range FreeVars(b) {
			bound[v] = true
		}
		takeReady()
	}
	// Any still-pending guard has genuinely unbound vars; evaluation will
	// surface the error with the variable name.
	out = append(out, pending...)
	return out
}

// unify extends env by binding vars to tuple values; already-bound
// variables must match (SQL equality), otherwise unification fails.
// Repeated variables within vars must also agree.
func unify(env Env, vars []Var, tuple types.Tuple) (Env, bool) {
	if len(vars) != len(tuple) {
		return nil, false
	}
	e2 := env
	cloned := false
	for i, v := range vars {
		if cur, ok := e2[v]; ok {
			if !cur.Equal(tuple[i]) {
				return nil, false
			}
			continue
		}
		if !cloned {
			e2 = env.Clone()
			cloned = true
		}
		e2[v] = tuple[i]
	}
	return e2, true
}
