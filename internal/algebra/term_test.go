package algebra

import (
	"reflect"
	"testing"

	"dbtoaster/internal/types"
)

func TestFreeVars(t *testing.T) {
	// Sum{b}( R(a,b) * [a = 1] * c )
	term := &AggSum{
		GroupVars: []Var{"b"},
		Body: NewProd(
			NewRel("R", "a", "b"),
			EqVarConst("a", types.NewInt(1)),
			VarVal("c"),
		),
	}
	if got := FreeVars(term); !reflect.DeepEqual(got, []Var{"b"}) {
		t.Errorf("FreeVars(AggSum) = %v", got)
	}
	if got := FreeVars(term.Body); !reflect.DeepEqual(got, []Var{"a", "b", "c"}) {
		t.Errorf("FreeVars(body) = %v", got)
	}
	m := &MapRef{Name: "q", Keys: []Var{"x", "y"}}
	if got := FreeVars(m); !reflect.DeepEqual(got, []Var{"x", "y"}) {
		t.Errorf("FreeVars(MapRef) = %v", got)
	}
}

func TestSubstitute(t *testing.T) {
	term := NewProd(NewRel("R", "a", "b"), VarVal("a"))
	got := Rename(term, map[Var]Var{"a": "p"})
	if got.String() != "R(p,b) * p" {
		t.Errorf("rename = %s", got)
	}
	if term.String() != "R(a,b) * a" {
		t.Errorf("rename mutated original: %s", term)
	}
}

func TestSubstituteRespectsAggSumBinding(t *testing.T) {
	// In Sum{b}(R(a,b) * a), variable a is bound (summed); renaming a→p
	// must not touch it, but renaming the group var b must work.
	term := &AggSum{GroupVars: []Var{"b"}, Body: NewProd(NewRel("R", "a", "b"), VarVal("a"))}
	got := Rename(term, map[Var]Var{"a": "p", "b": "k"})
	want := "Sum{k}(R(a,k) * a)"
	if got.String() != want {
		t.Errorf("rename = %s, want %s", got, want)
	}
}

func TestCmpOps(t *testing.T) {
	one, two := types.NewInt(1), types.NewInt(2)
	cases := []struct {
		op   CmpOp
		l, r types.Value
		want bool
	}{
		{CmpEq, one, one, true},
		{CmpEq, one, two, false},
		{CmpNeq, one, two, true},
		{CmpLt, one, two, true},
		{CmpLte, two, two, true},
		{CmpGt, two, one, true},
		{CmpGte, one, two, false},
		{CmpEq, types.Null, types.Null, false},
		{CmpNeq, types.Null, one, false},
		{CmpLt, types.Null, one, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.l, c.r); got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestCmpNegateFlip(t *testing.T) {
	pairs := map[CmpOp]CmpOp{
		CmpEq: CmpNeq, CmpNeq: CmpEq, CmpLt: CmpGte, CmpLte: CmpGt, CmpGt: CmpLte, CmpGte: CmpLt,
	}
	for op, want := range pairs {
		if got := op.Negate(); got != want {
			t.Errorf("Negate(%s) = %s, want %s", op, got, want)
		}
		if got := op.Negate().Negate(); got != op {
			t.Errorf("double negate of %s = %s", op, got)
		}
	}
	flips := map[CmpOp]CmpOp{CmpLt: CmpGt, CmpLte: CmpGte, CmpGt: CmpLt, CmpGte: CmpLte, CmpEq: CmpEq, CmpNeq: CmpNeq}
	for op, want := range flips {
		if got := op.Flip(); got != want {
			t.Errorf("Flip(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestZeroOneConst(t *testing.T) {
	if !IsZero(Zero()) || IsZero(One()) {
		t.Error("IsZero broken")
	}
	if !IsOne(One()) || IsOne(Zero()) {
		t.Error("IsOne broken")
	}
	if IsZero(NewRel("R", "a")) || IsOne(NewRel("R", "a")) {
		t.Error("relation misidentified as constant")
	}
	v, ok := ConstOf(ConstVal(types.NewFloat(2.5)))
	if !ok || v.Float() != 2.5 {
		t.Errorf("ConstOf = %v, %v", v, ok)
	}
	if _, ok := ConstOf(VarVal("x")); ok {
		t.Error("ConstOf(var) should fail")
	}
}

func TestRelationsAndAtomCount(t *testing.T) {
	term := NewSum(
		NewProd(NewRel("R", "a", "b"), NewRel("S", "b", "c")),
		NewProd(NewRel("R", "x", "y"),
			&AggSum{GroupVars: []Var{"y"}, Body: NewRel("T", "y", "z")}),
	)
	if got := Relations(term); !reflect.DeepEqual(got, []string{"R", "S", "T"}) {
		t.Errorf("Relations = %v", got)
	}
	// Sum takes the max of branch atom counts; branch 1 has R+S=2,
	// branch 2 has R + (T inside AggSum) = 2.
	if got := RelAtomCount(term); got != 2 {
		t.Errorf("RelAtomCount = %d", got)
	}
	if got := RelAtomCount(NewProd(NewRel("R", "a"), NewRel("R", "b"), One())); got != 2 {
		t.Errorf("self-join count = %d", got)
	}
}

func TestPrinting(t *testing.T) {
	term := &AggSum{
		GroupVars: []Var{"b"},
		Body: NewProd(
			NewRel("S", "b", "c"),
			&Cmp{Op: CmpGt, L: &VVar{Name: "c"}, R: &VConst{Value: types.NewInt(5)}},
			&Val{Expr: &VArith{Op: '*', L: &VVar{Name: "c"}, R: &VConst{Value: types.NewInt(2)}}},
		),
	}
	want := "Sum{b}(S(b,c) * [c > 5] * (c*2))"
	if got := term.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestEqualIsStructural(t *testing.T) {
	a := NewProd(NewRel("R", "a"), One())
	b := NewProd(NewRel("R", "a"), One())
	c := NewProd(One(), NewRel("R", "a"))
	if !Equal(a, b) {
		t.Error("identical terms unequal")
	}
	if Equal(a, c) {
		t.Error("reordered product equal (Equal is structural, not semantic)")
	}
}
