// Package algebra defines DBToaster's map algebra: a ring calculus over
// generalized multiset relations. A term denotes a function from variable
// assignments to numeric values; base relations map their tuples to
// multiplicities, comparisons are 0/1 indicators, products join (unifying
// shared variables), sums union, and AggSum marginalizes all variables but
// an explicit group-variable list.
//
// The compiler (internal/compiler) takes deltas of terms (internal/delta),
// simplifies them (internal/simplify), and materializes relation-bearing
// subterms as in-memory maps, recursively — the paper's central idea.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"dbtoaster/internal/types"
)

// Var is a variable name. Variables are plain strings; the translator and
// compiler guarantee uniqueness where required.
type Var = string

// Term is a ring-calculus term.
type Term interface {
	fmt.Stringer
	// FreeVars adds the term's free variables to the set.
	freeVars(set map[Var]bool)
	// substitute returns the term with variables replaced per s. It never
	// mutates the receiver.
	substitute(s map[Var]Var) Term
	termNode()
}

// Rel is a base-relation atom R(x1,...,xk): multiplicity of the bound tuple.
type Rel struct {
	Name string
	Vars []Var
}

// Val is a scalar factor: the value of an arithmetic expression over
// variables and constants.
type Val struct {
	Expr ValExpr
}

// Cmp is a comparison indicator: 1 when the comparison holds, else 0.
type Cmp struct {
	Op   CmpOp
	L, R ValExpr
}

// Sum is addition of terms.
type Sum struct {
	Terms []Term
}

// Prod is multiplication (natural join on shared variables).
type Prod struct {
	Factors []Term
}

// AggSum sums its body over all free variables except GroupVars.
type AggSum struct {
	GroupVars []Var
	Body      Term
}

// MapRef references a materialized in-memory map by name, keyed by Keys.
type MapRef struct {
	Name string
	Keys []Var
}

func (*Rel) termNode()    {}
func (*Val) termNode()    {}
func (*Cmp) termNode()    {}
func (*Sum) termNode()    {}
func (*Prod) termNode()   {}
func (*AggSum) termNode() {}
func (*MapRef) termNode() {}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNeq
	CmpLt
	CmpLte
	CmpGt
	CmpGte
)

var cmpNames = [...]string{CmpEq: "=", CmpNeq: "!=", CmpLt: "<", CmpLte: "<=", CmpGt: ">", CmpGte: ">="}

// String returns the operator's spelling.
func (op CmpOp) String() string { return cmpNames[op] }

// Negate returns the complementary operator (e.g. < becomes >=).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case CmpEq:
		return CmpNeq
	case CmpNeq:
		return CmpEq
	case CmpLt:
		return CmpGte
	case CmpLte:
		return CmpGt
	case CmpGt:
		return CmpLte
	default:
		return CmpLt
	}
}

// Flip returns the operator with swapped operands (e.g. < becomes >).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLte:
		return CmpGte
	case CmpGt:
		return CmpLt
	case CmpGte:
		return CmpLte
	default:
		return op
	}
}

// Eval applies the comparison to two concrete values.
func (op CmpOp) Eval(l, r types.Value) bool {
	switch op {
	case CmpEq:
		return l.Equal(r)
	case CmpNeq:
		return !l.Equal(r) && !l.IsNull() && !r.IsNull()
	case CmpLt:
		return !l.IsNull() && !r.IsNull() && l.Compare(r) < 0
	case CmpLte:
		return !l.IsNull() && !r.IsNull() && l.Compare(r) <= 0
	case CmpGt:
		return !l.IsNull() && !r.IsNull() && l.Compare(r) > 0
	case CmpGte:
		return !l.IsNull() && !r.IsNull() && l.Compare(r) >= 0
	}
	return false
}

// ValExpr is a scalar arithmetic expression over variables and constants.
type ValExpr interface {
	fmt.Stringer
	freeVars(set map[Var]bool)
	substitute(s map[Var]Var) ValExpr
	valNode()
}

// VConst is a constant value.
type VConst struct{ Value types.Value }

// VVar is a variable reference.
type VVar struct{ Name Var }

// VArith is an arithmetic operation over two scalar expressions.
type VArith struct {
	Op   byte // one of + - * /
	L, R ValExpr
}

func (*VConst) valNode() {}
func (*VVar) valNode()   {}
func (*VArith) valNode() {}

// Constructors.

// NewRel builds a relation atom.
func NewRel(name string, vars ...Var) *Rel { return &Rel{Name: name, Vars: vars} }

// One is the multiplicative unit.
func One() *Val { return &Val{Expr: &VConst{Value: types.NewInt(1)}} }

// Zero is the additive unit.
func Zero() *Val { return &Val{Expr: &VConst{Value: types.NewInt(0)}} }

// ConstVal wraps a constant as a scalar factor.
func ConstVal(v types.Value) *Val { return &Val{Expr: &VConst{Value: v}} }

// VarVal wraps a variable as a scalar factor.
func VarVal(x Var) *Val { return &Val{Expr: &VVar{Name: x}} }

// NewSum builds a sum; callers should prefer simplify.Simplify afterwards.
func NewSum(ts ...Term) *Sum { return &Sum{Terms: ts} }

// NewProd builds a product.
func NewProd(fs ...Term) *Prod { return &Prod{Factors: fs} }

// EqVarVar is the indicator [x = y].
func EqVarVar(x, y Var) *Cmp {
	return &Cmp{Op: CmpEq, L: &VVar{Name: x}, R: &VVar{Name: y}}
}

// EqVarConst is the indicator [x = c].
func EqVarConst(x Var, c types.Value) *Cmp {
	return &Cmp{Op: CmpEq, L: &VVar{Name: x}, R: &VConst{Value: c}}
}

// --- Free variables ---

func (r *Rel) freeVars(set map[Var]bool) {
	for _, v := range r.Vars {
		set[v] = true
	}
}
func (v *Val) freeVars(set map[Var]bool) { v.Expr.freeVars(set) }
func (c *Cmp) freeVars(set map[Var]bool) { c.L.freeVars(set); c.R.freeVars(set) }
func (s *Sum) freeVars(set map[Var]bool) {
	for _, t := range s.Terms {
		t.freeVars(set)
	}
}
func (p *Prod) freeVars(set map[Var]bool) {
	for _, f := range p.Factors {
		f.freeVars(set)
	}
}
func (a *AggSum) freeVars(set map[Var]bool) {
	// Only the group variables escape.
	for _, v := range a.GroupVars {
		set[v] = true
	}
}
func (m *MapRef) freeVars(set map[Var]bool) {
	for _, v := range m.Keys {
		set[v] = true
	}
}

func (v *VConst) freeVars(map[Var]bool)     {}
func (v *VVar) freeVars(set map[Var]bool)   { set[v.Name] = true }
func (v *VArith) freeVars(set map[Var]bool) { v.L.freeVars(set); v.R.freeVars(set) }

// FreeVars returns the sorted free variables of a term.
func FreeVars(t Term) []Var {
	set := map[Var]bool{}
	t.freeVars(set)
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// FreeVarSet returns the free variables of a term as a set.
func FreeVarSet(t Term) map[Var]bool {
	set := map[Var]bool{}
	t.freeVars(set)
	return set
}

// --- Substitution (variable renaming) ---

func subVar(s map[Var]Var, x Var) Var {
	if y, ok := s[x]; ok {
		return y
	}
	return x
}

func subVars(s map[Var]Var, xs []Var) []Var {
	out := make([]Var, len(xs))
	for i, x := range xs {
		out[i] = subVar(s, x)
	}
	return out
}

func (r *Rel) substitute(s map[Var]Var) Term { return &Rel{Name: r.Name, Vars: subVars(s, r.Vars)} }
func (v *Val) substitute(s map[Var]Var) Term { return &Val{Expr: v.Expr.substitute(s)} }
func (c *Cmp) substitute(s map[Var]Var) Term {
	return &Cmp{Op: c.Op, L: c.L.substitute(s), R: c.R.substitute(s)}
}
func (t *Sum) substitute(s map[Var]Var) Term {
	out := make([]Term, len(t.Terms))
	for i, x := range t.Terms {
		out[i] = x.substitute(s)
	}
	return &Sum{Terms: out}
}
func (p *Prod) substitute(s map[Var]Var) Term {
	out := make([]Term, len(p.Factors))
	for i, f := range p.Factors {
		out[i] = f.substitute(s)
	}
	return &Prod{Factors: out}
}
func (a *AggSum) substitute(s map[Var]Var) Term {
	// Bound (summed) variables are untouched: drop mappings whose source is
	// bound inside. Bound vars are fv(body) minus group vars.
	bodyFV := FreeVarSet(a.Body)
	inner := map[Var]Var{}
	group := map[Var]bool{}
	for _, g := range a.GroupVars {
		group[g] = true
	}
	for from, to := range s {
		if bodyFV[from] && !group[from] {
			continue // bound variable: not renamed
		}
		inner[from] = to
	}
	return &AggSum{GroupVars: subVars(s, a.GroupVars), Body: a.Body.substitute(inner)}
}
func (m *MapRef) substitute(s map[Var]Var) Term {
	return &MapRef{Name: m.Name, Keys: subVars(s, m.Keys)}
}

func (v *VConst) substitute(map[Var]Var) ValExpr { return v }
func (v *VVar) substitute(s map[Var]Var) ValExpr { return &VVar{Name: subVar(s, v.Name)} }
func (v *VArith) substitute(s map[Var]Var) ValExpr {
	return &VArith{Op: v.Op, L: v.L.substitute(s), R: v.R.substitute(s)}
}

// Rename returns t with variables renamed per s (capture is the caller's
// concern; the compiler only renames with fresh targets).
func Rename(t Term, s map[Var]Var) Term { return t.substitute(s) }

// RenameVal returns e with variables renamed per s.
func RenameVal(e ValExpr, s map[Var]Var) ValExpr { return e.substitute(s) }

// --- Printing ---

func (r *Rel) String() string { return r.Name + "(" + strings.Join(r.Vars, ",") + ")" }
func (v *Val) String() string { return v.Expr.String() }
func (c *Cmp) String() string {
	return "[" + c.L.String() + " " + c.Op.String() + " " + c.R.String() + "]"
}
func (s *Sum) String() string {
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}
func (p *Prod) String() string {
	parts := make([]string, len(p.Factors))
	for i, f := range p.Factors {
		parts[i] = f.String()
	}
	return strings.Join(parts, " * ")
}
func (a *AggSum) String() string {
	return "Sum{" + strings.Join(a.GroupVars, ",") + "}(" + a.Body.String() + ")"
}
func (m *MapRef) String() string {
	return m.Name + "[" + strings.Join(m.Keys, ",") + "]"
}

func (v *VConst) String() string { return v.Value.String() }
func (v *VVar) String() string   { return v.Name }
func (v *VArith) String() string {
	return "(" + v.L.String() + string(v.Op) + v.R.String() + ")"
}

// --- Structural helpers ---

// IsZero reports whether t is the literal zero scalar.
func IsZero(t Term) bool {
	v, ok := t.(*Val)
	if !ok {
		return false
	}
	c, ok := v.Expr.(*VConst)
	return ok && c.Value.Kind().Numeric() && c.Value.Float() == 0
}

// IsOne reports whether t is the literal one scalar.
func IsOne(t Term) bool {
	v, ok := t.(*Val)
	if !ok {
		return false
	}
	c, ok := v.Expr.(*VConst)
	return ok && c.Value.Kind().Numeric() && c.Value.Float() == 1
}

// ConstOf extracts a constant value if t is a constant scalar.
func ConstOf(t Term) (types.Value, bool) {
	v, ok := t.(*Val)
	if !ok {
		return types.Null, false
	}
	c, ok := v.Expr.(*VConst)
	if !ok {
		return types.Null, false
	}
	return c.Value, true
}

// Relations lists the distinct base-relation names occurring in t,
// including inside nested AggSums, in sorted order.
func Relations(t Term) []string {
	set := map[string]bool{}
	collectRels(t, set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func collectRels(t Term, set map[string]bool) {
	switch t := t.(type) {
	case *Rel:
		set[t.Name] = true
	case *Sum:
		for _, x := range t.Terms {
			collectRels(x, set)
		}
	case *Prod:
		for _, f := range t.Factors {
			collectRels(f, set)
		}
	case *AggSum:
		collectRels(t.Body, set)
	case *Exists:
		collectRels(t.Body, set)
	case *ExistsDelta:
		collectRels(t.Body, set)
		collectRels(t.DBody, set)
	}
}

// RelAtomCount counts base-relation atoms in t (with multiplicity); the
// compiler's termination argument rests on deltas strictly decreasing it.
func RelAtomCount(t Term) int {
	switch t := t.(type) {
	case *Rel:
		return 1
	case *Sum:
		max := 0
		for _, x := range t.Terms {
			if n := RelAtomCount(x); n > max {
				max = n
			}
		}
		return max
	case *Prod:
		n := 0
		for _, f := range t.Factors {
			n += RelAtomCount(f)
		}
		return n
	case *AggSum:
		return RelAtomCount(t.Body)
	case *Exists:
		return RelAtomCount(t.Body)
	case *ExistsDelta:
		return RelAtomCount(t.Body) + RelAtomCount(t.DBody)
	default:
		return 0
	}
}

// Equal reports structural equality of two terms.
func Equal(a, b Term) bool { return a.String() == b.String() }
