package algebra

import "strings"

// Exists is the decorrelated EXISTS/IN indicator of the 2012 recursive-delta
// scheme: for each binding of Keys it is 1 when AggSum(Keys, Body) > 0 and 0
// otherwise (DBSP's distinct applied to the subquery's Z-set). Keys are the
// correlation variables shared with the enclosing query; every other free
// variable of Body is existentially bound inside the term, mirroring AggSum.
//
// The compiler materializes Exists by registering the per-key count
// AggSum(Keys, Body) as an auxiliary map C and reading the factor as the
// guard [C[Keys] > 0]; the delta rule replaces Exists by ExistsDelta.
type Exists struct {
	Keys []Var
	Body Term
}

// ExistsDelta is the delta of an Exists factor under one base-relation
// event: per Keys binding its value is
//
//	[AggSum(Keys, Body + DBody) > 0] − [AggSum(Keys, Body) > 0]
//
// i.e. +1 when the group appears, −1 when it disappears, 0 otherwise. It is
// produced by delta.Apply and consumed by the compiler's materialization
// (which turns it into count-map lookups plus the event's contribution);
// it never appears inside a map definition.
type ExistsDelta struct {
	Keys  []Var
	Body  Term
	DBody Term
}

func (*Exists) termNode()      {}
func (*ExistsDelta) termNode() {}

// boundInterior returns the set of variables bound inside the Exists term:
// the body's free variables minus the keys.
func existsInterior(keys []Var, body Term) map[Var]bool {
	interior := FreeVarSet(body)
	for _, k := range keys {
		delete(interior, k)
	}
	return interior
}

func (e *Exists) freeVars(set map[Var]bool) {
	for _, k := range e.Keys {
		set[k] = true
	}
}

func (e *ExistsDelta) freeVars(set map[Var]bool) {
	for _, k := range e.Keys {
		set[k] = true
	}
	// DBody references event parameters, which are free; body-interior
	// variables stay bound.
	interior := existsInterior(e.Keys, e.Body)
	for v := range FreeVarSet(e.DBody) {
		if !interior[v] {
			set[v] = true
		}
	}
}

// innerSubst drops mappings whose source is bound inside the term, exactly
// like AggSum's capture-aware substitution.
func existsInnerSubst(s map[Var]Var, keys []Var, body Term) map[Var]Var {
	interior := existsInterior(keys, body)
	inner := map[Var]Var{}
	for from, to := range s {
		if interior[from] {
			continue
		}
		inner[from] = to
	}
	return inner
}

func (e *Exists) substitute(s map[Var]Var) Term {
	inner := existsInnerSubst(s, e.Keys, e.Body)
	return &Exists{Keys: subVars(s, e.Keys), Body: e.Body.substitute(inner)}
}

func (e *ExistsDelta) substitute(s map[Var]Var) Term {
	inner := existsInnerSubst(s, e.Keys, e.Body)
	return &ExistsDelta{
		Keys:  subVars(s, e.Keys),
		Body:  e.Body.substitute(inner),
		DBody: e.DBody.substitute(inner),
	}
}

func (e *Exists) String() string {
	return "Exists{" + strings.Join(e.Keys, ",") + "}(" + e.Body.String() + ")"
}

func (e *ExistsDelta) String() string {
	return "ExistsΔ{" + strings.Join(e.Keys, ",") + "}(" + e.Body.String() + " | " + e.DBody.String() + ")"
}
