package algebra

// Lift binds a variable to the value of a scalar expression: as a ring
// element it is the indicator [x := e], value 1 with the side effect of
// binding x when x is unbound, or [x = e] when x is already bound. MIN/MAX
// compilation uses Lift to group join results by the aggregated expression's
// value, and threshold-style queries use it for computed group keys.
type Lift struct {
	Var  Var
	Expr ValExpr
}

func (*Lift) termNode() {}

func (l *Lift) freeVars(set map[Var]bool) {
	set[l.Var] = true
	l.Expr.freeVars(set)
}

func (l *Lift) substitute(s map[Var]Var) Term {
	return &Lift{Var: subVar(s, l.Var), Expr: l.Expr.substitute(s)}
}

func (l *Lift) String() string { return "[" + l.Var + " := " + l.Expr.String() + "]" }
