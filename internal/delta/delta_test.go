package delta

import (
	"strings"
	"testing"

	"dbtoaster/internal/algebra"
	"dbtoaster/internal/schema"
	"dbtoaster/internal/simplify"
	"dbtoaster/internal/store"
	"dbtoaster/internal/types"
)

var (
	relR = schema.NewRelation("R", "A:int", "B:int")
	relS = schema.NewRelation("S", "B:int", "C:int")
	relT = schema.NewRelation("T", "C:int", "D:int")
)

// paperBody is R(a,b) * S(b,c) * T(c,d) * (a*d).
func paperBody() algebra.Term {
	return algebra.NewProd(
		algebra.NewRel("R", "a", "b"),
		algebra.NewRel("S", "b", "c"),
		algebra.NewRel("T", "c", "d"),
		&algebra.Val{Expr: &algebra.VArith{Op: '*', L: &algebra.VVar{Name: "a"}, R: &algebra.VVar{Name: "d"}}},
	)
}

func boundParams(ev Event) func(algebra.Var) bool {
	set := map[algebra.Var]bool{}
	for _, p := range ev.Params {
		set[p] = true
	}
	return func(v algebra.Var) bool { return set[v] }
}

func TestEventNaming(t *testing.T) {
	ins := NewEvent(relR, true)
	del := NewEvent(relR, false)
	if ins.Name() != "+R" || del.Name() != "-R" {
		t.Errorf("names = %s %s", ins.Name(), del.Name())
	}
	if ins.Params[0] != "@r_a" || ins.Params[1] != "@r_b" {
		t.Errorf("params = %v", ins.Params)
	}
}

func TestDeltaInsertR(t *testing.T) {
	// Paper: Δ+R(sum(A*D)) simplifies to (@r_a * d) weighted join of S,T
	// with b replaced by the parameter — the first row of Figure 2.
	ev := NewEvent(relR, true)
	d := Apply(paperBody(), ev)
	ms := simplify.Simplify(d, boundParams(ev))
	if len(ms) != 1 {
		t.Fatalf("monomials = %v", ms)
	}
	got := ms[0].String()
	if !strings.Contains(got, "S(@r_b,c)") {
		t.Errorf("R scan not elided: %s", got)
	}
	if strings.Contains(got, "R(") {
		t.Errorf("R atom remains: %s", got)
	}
	if !strings.Contains(got, "@r_a") || !strings.Contains(got, "* d") {
		t.Errorf("value factor wrong: %s", got)
	}
}

func TestDeltaInsertSEliminatesJoin(t *testing.T) {
	// Δ+S splits into R-side times T-side with no shared variables —
	// the join elimination the paper highlights.
	ev := NewEvent(relS, true)
	d := Apply(paperBody(), ev)
	ms := simplify.Simplify(d, boundParams(ev))
	if len(ms) != 1 {
		t.Fatalf("monomials = %v", ms)
	}
	got := ms[0].String()
	if !strings.Contains(got, "R(a,@s_b)") || !strings.Contains(got, "T(@s_c,d)") {
		t.Errorf("S delta = %s", got)
	}
	// R-side and T-side share no variables.
	if strings.Contains(got, "S(") {
		t.Errorf("S atom remains: %s", got)
	}
}

func TestDeltaDeleteCarriesSign(t *testing.T) {
	ev := NewEvent(relR, false)
	d := Apply(paperBody(), ev)
	ms := simplify.Simplify(d, boundParams(ev))
	if len(ms) != 1 {
		t.Fatalf("monomials = %v", ms)
	}
	if !strings.Contains(ms[0].String(), "-1") {
		t.Errorf("delete sign missing: %s", ms[0])
	}
}

func TestDeltaUnrelatedRelationIsZero(t *testing.T) {
	ev := NewEvent(schema.NewRelation("Z", "X:int"), true)
	d := Apply(paperBody(), ev)
	if ms := simplify.Simplify(d, boundParams(ev)); len(ms) != 0 {
		t.Errorf("unrelated delta nonzero: %v", ms)
	}
}

func TestDeltaSelfJoinCrossTerm(t *testing.T) {
	// q = Σ R(a1,b) R(a2,b): Δ+R must contain two linear terms and the
	// quadratic cross term (the inserted tuple joining itself).
	body := algebra.NewProd(
		algebra.NewRel("R", "a1", "b"),
		algebra.NewRel("R", "a2", "b"),
	)
	ev := NewEvent(relR, true)
	ms := simplify.Simplify(Apply(body, ev), boundParams(ev))
	if len(ms) != 3 {
		t.Fatalf("monomials = %d, want 3: %v", len(ms), ms)
	}
	// One monomial must be relation-free (the ΔΔ cross term).
	crossFree := 0
	for _, m := range ms {
		if algebra.RelAtomCount(m.Term()) == 0 {
			crossFree++
		}
	}
	if crossFree != 1 {
		t.Errorf("cross terms = %d, want 1: %v", crossFree, ms)
	}
}

func TestDeltaReducesAtomCount(t *testing.T) {
	ev := NewEvent(relR, true)
	body := paperBody()
	before := algebra.RelAtomCount(body)
	for _, m := range simplify.Simplify(Apply(body, ev), boundParams(ev)) {
		if got := algebra.RelAtomCount(m.Term()); got >= before {
			t.Errorf("delta atom count %d not below %d", got, before)
		}
	}
}

func TestDeltaAggSum(t *testing.T) {
	term := &algebra.AggSum{GroupVars: []algebra.Var{"b"}, Body: algebra.NewRel("R", "a", "b")}
	ev := NewEvent(relR, true)
	d := Apply(term, ev)
	as, ok := d.(*algebra.AggSum)
	if !ok || len(as.GroupVars) != 1 {
		t.Fatalf("delta of AggSum = %s", d)
	}
}

// TestDeltaCorrectnessAgainstOracle replays a small event stream, checking
// after every event that (old value + evaluated delta) equals the value
// evaluated from the new base state — the algebraic soundness of Apply.
func TestDeltaCorrectnessAgainstOracle(t *testing.T) {
	cat := schema.NewCatalog(relR, relS, relT)
	db := store.New(cat)
	query := &algebra.AggSum{Body: paperBody()}

	events := []struct {
		rel    string
		insert bool
		vals   [2]int64
	}{
		{"R", true, [2]int64{1, 10}}, {"S", true, [2]int64{10, 100}},
		{"T", true, [2]int64{100, 7}}, {"R", true, [2]int64{2, 10}},
		{"S", true, [2]int64{10, 200}}, {"T", true, [2]int64{200, 9}},
		{"R", false, [2]int64{1, 10}}, {"S", false, [2]int64{10, 100}},
		{"R", true, [2]int64{1, 10}}, {"T", false, [2]int64{100, 7}},
	}
	rels := map[string]*schema.Relation{"R": relR, "S": relS, "T": relT}
	current, err := algebra.EvalScalar(db, query, algebra.Env{})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		ev := NewEvent(rels[e.rel], e.insert)
		dTerm := Apply(query.Body, ev)
		env := algebra.Env{
			ev.Params[0]: types.NewInt(e.vals[0]),
			ev.Params[1]: types.NewInt(e.vals[1]),
		}
		// Delta is evaluated against the PRE-state, after simplification
		// (equality propagation turns the [x = @p] indicators into bindings).
		var dv float64
		for _, m := range simplify.Simplify(dTerm, boundParams(ev)) {
			v, err := algebra.EvalScalar(db, &algebra.AggSum{Body: m.Term()}, env)
			if err != nil {
				t.Fatal(err)
			}
			dv += v
		}
		tuple := types.Tuple{types.NewInt(e.vals[0]), types.NewInt(e.vals[1])}
		if e.insert {
			err = db.Insert(e.rel, tuple)
		} else {
			err = db.Delete(e.rel, tuple)
		}
		if err != nil {
			t.Fatal(err)
		}
		after, err := algebra.EvalScalar(db, query, algebra.Env{})
		if err != nil {
			t.Fatal(err)
		}
		if current+dv != after {
			t.Fatalf("event %d %s%v: old %v + Δ %v != new %v", i, ev.Name(), tuple, current, dv, after)
		}
		current = after
	}
	if current == 0 {
		t.Error("stream should end with a non-zero result (sanity)")
	}
}

func TestTouches(t *testing.T) {
	body := paperBody()
	if !Touches(body, "R") || !Touches(body, "s") || Touches(body, "Z") {
		t.Error("Touches misreports")
	}
}
