// Package delta implements delta derivation: given a map-algebra term and
// an insert or delete event on a base relation, it produces the term
// denoting the change of the original term's value. Deltas of deltas drive
// the paper's recursive compilation: each application strictly reduces the
// number of relation atoms, which is the compiler's termination argument.
package delta

import (
	"strings"

	"dbtoaster/internal/algebra"
	"dbtoaster/internal/schema"
	"dbtoaster/internal/types"
)

// Event is an insert or delete of one tuple on a base relation. Params are
// the trigger's formal argument variables, one per column; the convention
// "@rel_col" keeps them disjoint from every translator-generated variable
// (SQL identifiers cannot contain '@').
type Event struct {
	Rel    *schema.Relation
	Insert bool
	Params []algebra.Var
}

// NewEvent builds an event with canonical parameter names.
func NewEvent(rel *schema.Relation, insert bool) Event {
	params := make([]algebra.Var, rel.Arity())
	for i, c := range rel.Columns {
		params[i] = "@" + strings.ToLower(rel.Name) + "_" + strings.ToLower(c.Name)
	}
	return Event{Rel: rel, Insert: insert, Params: params}
}

// Name renders the event like "+R" or "-R".
func (ev Event) Name() string {
	if ev.Insert {
		return "+" + ev.Rel.Name
	}
	return "-" + ev.Rel.Name
}

// Apply returns the delta of t with respect to the event. The result is
// un-simplified; callers run it through internal/simplify.
//
// Rules:
//
//	ΔR(x⃗)        = ±Π[xᵢ = pᵢ]      when R is the event relation, else 0
//	Δ(a + b)     = Δa + Δb
//	Δ(a · b)     = Δa·b + a·Δb + Δa·Δb
//	ΔAggSum(g,b) = AggSum(g, Δb)
//	Δc           = 0 for Val, Cmp, Lift, MapRef
func Apply(t algebra.Term, ev Event) algebra.Term {
	switch t := t.(type) {
	case *algebra.Rel:
		if !strings.EqualFold(t.Name, ev.Rel.Name) {
			return algebra.Zero()
		}
		factors := make([]algebra.Term, 0, len(t.Vars)+1)
		if !ev.Insert {
			factors = append(factors, algebra.ConstVal(types.NewInt(-1)))
		}
		for i, v := range t.Vars {
			factors = append(factors, algebra.EqVarVar(v, ev.Params[i]))
		}
		if len(factors) == 0 {
			// Zero-column relation: the delta is the constant ±1.
			return algebra.One()
		}
		return algebra.NewProd(factors...)
	case *algebra.Sum:
		out := make([]algebra.Term, 0, len(t.Terms))
		for _, x := range t.Terms {
			if d := Apply(x, ev); !algebra.IsZero(d) {
				out = append(out, d)
			}
		}
		if len(out) == 0 {
			return algebra.Zero()
		}
		return algebra.NewSum(out...)
	case *algebra.Prod:
		return prodDelta(t.Factors, ev)
	case *algebra.AggSum:
		return &algebra.AggSum{
			GroupVars: append([]algebra.Var{}, t.GroupVars...),
			Body:      Apply(t.Body, ev),
		}
	case *algebra.Exists:
		// ΔExists(K, B) = [Sum(K, B+ΔB) > 0] − [Sum(K, B) > 0]: the change
		// of the 0/1 indicator, not the change of the count (the 2012
		// paper's treatment of decorrelated EXISTS). Untouched bodies have
		// zero delta.
		if !Touches(t.Body, ev.Rel.Name) {
			return algebra.Zero()
		}
		return &algebra.ExistsDelta{
			Keys:  append([]algebra.Var{}, t.Keys...),
			Body:  t.Body,
			DBody: Apply(t.Body, ev),
		}
	default:
		// Val, Cmp, Lift, MapRef: constants with respect to base data.
		return algebra.Zero()
	}
}

// prodDelta applies the product rule pairwise down the factor list,
// pruning zero branches as it goes (Δ of an unrelated factor is 0, so
// without pruning an n-factor product would expand to 3ⁿ terms).
func prodDelta(fs []algebra.Term, ev Event) algebra.Term {
	if len(fs) == 0 {
		return algebra.Zero()
	}
	if len(fs) == 1 {
		return Apply(fs[0], ev)
	}
	head := fs[0]
	rest := &algebra.Prod{Factors: fs[1:]}
	dHead := Apply(head, ev)
	dRest := prodDelta(fs[1:], ev)
	headZero, restZero := algebra.IsZero(dHead), algebra.IsZero(dRest)
	switch {
	case headZero && restZero:
		return algebra.Zero()
	case headZero:
		return algebra.NewProd(head, dRest)
	case restZero:
		return algebra.NewProd(dHead, rest)
	default:
		return algebra.NewSum(
			algebra.NewProd(dHead, rest),
			algebra.NewProd(head, dRest),
			algebra.NewProd(dHead, dRest),
		)
	}
}

// Touches reports whether an event on relation rel changes the value of t.
func Touches(t algebra.Term, rel string) bool {
	for _, r := range algebra.Relations(t) {
		if strings.EqualFold(r, rel) {
			return true
		}
	}
	return false
}
