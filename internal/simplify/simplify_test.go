package simplify

import (
	"testing"

	"dbtoaster/internal/algebra"
	"dbtoaster/internal/types"
)

func noneBound(algebra.Var) bool { return false }

func boundSet(vars ...algebra.Var) func(algebra.Var) bool {
	set := map[algebra.Var]bool{}
	for _, v := range vars {
		set[v] = true
	}
	return func(v algebra.Var) bool { return set[v] }
}

func TestExpandDistributes(t *testing.T) {
	// (a + b) * (c + d) → 4 monomials
	term := algebra.NewProd(
		algebra.NewSum(algebra.VarVal("a"), algebra.VarVal("b")),
		algebra.NewSum(algebra.VarVal("c"), algebra.VarVal("d")),
	)
	ms := Expand(term)
	if len(ms) != 4 {
		t.Fatalf("monomials = %d, want 4", len(ms))
	}
	if ms[0].String() != "a * c" || ms[3].String() != "b * d" {
		t.Errorf("monomials = %v", ms)
	}
}

func TestExpandFlattensNesting(t *testing.T) {
	term := algebra.NewProd(
		algebra.NewProd(algebra.VarVal("a"), algebra.VarVal("b")),
		algebra.NewSum(algebra.NewSum(algebra.VarVal("c"))),
	)
	ms := Expand(term)
	if len(ms) != 1 || len(ms[0].Factors) != 3 {
		t.Errorf("expand = %v", ms)
	}
}

func TestSimplifyConstantFolding(t *testing.T) {
	// 2 * 3 * R(a) → R(a) * 6
	term := algebra.NewProd(
		algebra.ConstVal(types.NewInt(2)),
		algebra.ConstVal(types.NewInt(3)),
		algebra.NewRel("R", "a"),
	)
	ms := Simplify(term, noneBound)
	if len(ms) != 1 {
		t.Fatalf("ms = %v", ms)
	}
	if got := ms[0].String(); got != "R(a) * 6" {
		t.Errorf("folded = %s", got)
	}
}

func TestSimplifyZeroAnnihilates(t *testing.T) {
	term := algebra.NewProd(algebra.Zero(), algebra.NewRel("R", "a"))
	if ms := Simplify(term, noneBound); len(ms) != 0 {
		t.Errorf("zero monomial survived: %v", ms)
	}
	// Constant false comparison annihilates too.
	term = algebra.NewProd(
		&algebra.Cmp{Op: algebra.CmpEq, L: &algebra.VConst{Value: types.NewInt(1)}, R: &algebra.VConst{Value: types.NewInt(2)}},
		algebra.NewRel("R", "a"),
	)
	if ms := Simplify(term, noneBound); len(ms) != 0 {
		t.Errorf("false cmp survived: %v", ms)
	}
}

func TestSimplifyTrueCmpDrops(t *testing.T) {
	term := algebra.NewProd(
		&algebra.Cmp{Op: algebra.CmpLt, L: &algebra.VConst{Value: types.NewInt(1)}, R: &algebra.VConst{Value: types.NewInt(2)}},
		algebra.NewRel("R", "a"),
	)
	ms := Simplify(term, noneBound)
	if len(ms) != 1 || ms[0].String() != "R(a)" {
		t.Errorf("ms = %v", ms)
	}
}

func TestSimplifyUnitsDropped(t *testing.T) {
	term := algebra.NewProd(algebra.One(), algebra.NewRel("R", "a"), algebra.One())
	ms := Simplify(term, noneBound)
	if len(ms) != 1 || len(ms[0].Factors) != 1 {
		t.Errorf("ms = %v", ms)
	}
}

func TestEqualityPropagationVarVar(t *testing.T) {
	// [x = p] * S(x, c) * x   with p bound (event param), x summed:
	// → S(p, c) * p — the scan elision at the heart of the paper.
	term := algebra.NewProd(
		algebra.EqVarVar("x", "p"),
		algebra.NewRel("S", "x", "c"),
		algebra.VarVal("x"),
	)
	ms := Simplify(term, boundSet("p"))
	if len(ms) != 1 {
		t.Fatalf("ms = %v", ms)
	}
	if got := ms[0].String(); got != "S(p,c) * p" {
		t.Errorf("propagated = %s", got)
	}
}

func TestEqualityPropagationKeepsBothBound(t *testing.T) {
	// [p = q] with both bound stays as a runtime check.
	term := algebra.NewProd(algebra.EqVarVar("p", "q"), algebra.NewRel("R", "a"))
	ms := Simplify(term, boundSet("p", "q"))
	if len(ms) != 1 || len(ms[0].Factors) != 2 {
		t.Errorf("ms = %v", ms)
	}
}

func TestEqualityPropagationVarConst(t *testing.T) {
	// [x = 5] * x  → 5 (x eliminable, not positional)
	term := algebra.NewProd(
		algebra.EqVarConst("x", types.NewInt(5)),
		algebra.VarVal("x"),
	)
	ms := Simplify(term, noneBound)
	if len(ms) != 1 || ms[0].String() != "5" {
		t.Errorf("ms = %v", ms)
	}
}

func TestEqualityPropagationConstIntoRelBlocked(t *testing.T) {
	// [x = 5] * R(x): x is positional; the filter must remain.
	term := algebra.NewProd(
		algebra.EqVarConst("x", types.NewInt(5)),
		algebra.NewRel("R", "x"),
	)
	ms := Simplify(term, noneBound)
	if len(ms) != 1 || len(ms[0].Factors) != 2 {
		t.Errorf("ms = %v", ms)
	}
}

func TestReflexiveCmp(t *testing.T) {
	eq := algebra.EqVarVar("x", "x")
	ms := Simplify(algebra.NewProd(eq, algebra.NewRel("R", "x")), boundSet("x"))
	if len(ms) != 1 || ms[0].String() != "R(x)" {
		t.Errorf("[x=x] not dropped: %v", ms)
	}
	neq := &algebra.Cmp{Op: algebra.CmpNeq, L: &algebra.VVar{Name: "x"}, R: &algebra.VVar{Name: "x"}}
	if ms := Simplify(algebra.NewProd(neq, algebra.NewRel("R", "x")), boundSet("x")); len(ms) != 0 {
		t.Errorf("[x!=x] not annihilated: %v", ms)
	}
}

func TestLiftElimination(t *testing.T) {
	// [v := a+1] with v unused: Σ_v [v:=e] = 1, so the lift drops.
	lift := &algebra.Lift{Var: "v", Expr: &algebra.VArith{Op: '+', L: &algebra.VVar{Name: "a"}, R: &algebra.VConst{Value: types.NewInt(1)}}}
	term := algebra.NewProd(lift, algebra.NewRel("R", "a"))
	ms := Simplify(term, noneBound)
	if len(ms) != 1 || ms[0].String() != "R(a)" {
		t.Errorf("lift not eliminated: %v", ms)
	}
	// But a lift whose var is an output (bound) must stay.
	ms = Simplify(term, boundSet("v"))
	if len(ms) != 1 || len(ms[0].Factors) != 2 {
		t.Errorf("output lift wrongly eliminated: %v", ms)
	}
	// And a lift whose var is used elsewhere must stay.
	term = algebra.NewProd(lift, algebra.NewRel("R", "a"), algebra.VarVal("v"))
	ms = Simplify(term, noneBound)
	if len(ms) != 1 || len(ms[0].Factors) != 3 {
		t.Errorf("used lift wrongly eliminated: %v", ms)
	}
}

func TestFoldVal(t *testing.T) {
	x := &algebra.VVar{Name: "x"}
	c := func(n int64) algebra.ValExpr { return &algebra.VConst{Value: types.NewInt(n)} }
	cases := []struct {
		in   algebra.ValExpr
		want string
	}{
		{&algebra.VArith{Op: '+', L: c(2), R: c(3)}, "5"},
		{&algebra.VArith{Op: '*', L: c(4), R: c(5)}, "20"},
		{&algebra.VArith{Op: '+', L: c(0), R: x}, "x"},
		{&algebra.VArith{Op: '+', L: x, R: c(0)}, "x"},
		{&algebra.VArith{Op: '-', L: x, R: c(0)}, "x"},
		{&algebra.VArith{Op: '*', L: c(1), R: x}, "x"},
		{&algebra.VArith{Op: '*', L: x, R: c(1)}, "x"},
		{&algebra.VArith{Op: '*', L: c(0), R: x}, "0"},
		{&algebra.VArith{Op: '/', L: x, R: c(1)}, "x"},
		{&algebra.VArith{Op: '/', L: c(0), R: x}, "0"},
		{&algebra.VArith{Op: '+', L: &algebra.VArith{Op: '*', L: c(2), R: c(3)}, R: x}, "(6+x)"},
	}
	for _, cse := range cases {
		if got := FoldVal(cse.in).String(); got != cse.want {
			t.Errorf("FoldVal(%s) = %s, want %s", cse.in, got, cse.want)
		}
	}
	// Division by zero must not fold (NULL at runtime).
	div0 := &algebra.VArith{Op: '/', L: c(1), R: c(0)}
	if _, ok := FoldVal(div0).(*algebra.VConst); ok {
		t.Error("1/0 folded to a constant")
	}
}

func TestSimplifyChainPropagation(t *testing.T) {
	// Delta of the paper query for insert R(pa, pb):
	// [x=pa][y=pb] S(y,c) T(c,d) (x*d) → S(pb,c) T(c,d) (pa*d)
	term := algebra.NewProd(
		algebra.EqVarVar("x", "pa"),
		algebra.EqVarVar("y", "pb"),
		algebra.NewRel("S", "y", "c"),
		algebra.NewRel("T", "c", "d"),
		&algebra.Val{Expr: &algebra.VArith{Op: '*', L: &algebra.VVar{Name: "x"}, R: &algebra.VVar{Name: "d"}}},
	)
	ms := Simplify(term, boundSet("pa", "pb"))
	if len(ms) != 1 {
		t.Fatalf("ms = %v", ms)
	}
	got := ms[0].String()
	// The value factor x*d splits into separate factors (factorization
	// rule), with x renamed to pa.
	if got != "S(pb,c) * T(c,d) * pa * d" {
		t.Errorf("chain propagation = %s", got)
	}
}

func TestMulValFactorSplits(t *testing.T) {
	term := &algebra.Val{Expr: &algebra.VArith{Op: '*',
		L: &algebra.VVar{Name: "a"},
		R: &algebra.VArith{Op: '*', L: &algebra.VVar{Name: "b"}, R: &algebra.VVar{Name: "c"}}}}
	ms := Simplify(algebra.NewProd(term, algebra.NewRel("R", "a", "b", "c")), boundSet())
	if len(ms) != 1 || len(ms[0].Factors) != 4 {
		t.Errorf("split = %v", ms)
	}
	// Non-multiplicative arithmetic stays intact.
	add := &algebra.Val{Expr: &algebra.VArith{Op: '+', L: &algebra.VVar{Name: "a"}, R: &algebra.VVar{Name: "b"}}}
	ms = Simplify(algebra.NewProd(add, algebra.NewRel("R", "a", "b")), boundSet())
	if len(ms) != 1 || len(ms[0].Factors) != 2 {
		t.Errorf("addition wrongly split: %v", ms)
	}
}

func TestSimplifyEmptyMonomialIsOne(t *testing.T) {
	ms := Simplify(algebra.One(), noneBound)
	if len(ms) != 1 || ms[0].String() != "1" {
		t.Errorf("ms = %v", ms)
	}
	if len(ms[0].Factors) != 0 {
		// A fully-eliminated monomial keeps no factors and renders as 1.
		t.Errorf("factors = %v", ms[0].Factors)
	}
}

func TestSimplifyInclusionExclusion(t *testing.T) {
	// OR lowering: a + b - a*b with a=[p=1], b=[p=2]; p bound.
	a := algebra.EqVarConst("p", types.NewInt(1))
	b := algebra.EqVarConst("p", types.NewInt(2))
	term := algebra.NewSum(a, b,
		algebra.NewProd(algebra.ConstVal(types.NewInt(-1)), a, b))
	ms := Simplify(term, boundSet("p"))
	if len(ms) != 3 {
		t.Fatalf("ms = %v", ms)
	}
}
