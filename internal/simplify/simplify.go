// Package simplify implements DBToaster's map-algebra simplification rules.
// The compiler normalizes delta terms into polynomials (sums of monomials:
// flat factor lists), then simplifies each monomial:
//
//   - constant folding of scalar arithmetic and constant comparisons
//   - unit elimination (×1 dropped, ×0 annihilates the monomial)
//   - equality propagation: an equality [x = y] binding an eliminable
//     variable is removed by renaming, which is what elides scans when a
//     delta replaces a relation atom with event parameters
//   - trivial lift elimination (a lifted variable used nowhere else
//     marginalizes to 1)
//
// The remaining paper rules — factorization (sum(a·D) = a·sum(D)) and
// product decomposition into connected components (join elimination) —
// operate across a monomial's factor graph and live in the compiler's
// materialization step, which consumes the monomials produced here.
package simplify

import (
	"dbtoaster/internal/algebra"
	"dbtoaster/internal/types"
)

// Monomial is a flat product of factors: no Sum or Prod nodes at top level
// (AggSum factors stay opaque). The empty monomial denotes the constant 1.
type Monomial struct {
	Factors []algebra.Term
}

// Term re-assembles the monomial into an algebra term.
func (m Monomial) Term() algebra.Term {
	switch len(m.Factors) {
	case 0:
		return algebra.One()
	case 1:
		return m.Factors[0]
	default:
		return algebra.NewProd(m.Factors...)
	}
}

// String renders the monomial.
func (m Monomial) String() string { return m.Term().String() }

// Expand normalizes a term into polynomial form: a list of monomials whose
// sum is equivalent to t. Products distribute over sums; nested sums and
// products flatten. AggSum and MapRef factors are kept opaque.
func Expand(t algebra.Term) []Monomial {
	switch t := t.(type) {
	case *algebra.Sum:
		var out []Monomial
		for _, x := range t.Terms {
			out = append(out, Expand(x)...)
		}
		return out
	case *algebra.Prod:
		out := []Monomial{{}}
		for _, f := range t.Factors {
			sub := Expand(f)
			next := make([]Monomial, 0, len(out)*len(sub))
			for _, m := range out {
				for _, s := range sub {
					fs := make([]algebra.Term, 0, len(m.Factors)+len(s.Factors))
					fs = append(fs, m.Factors...)
					fs = append(fs, s.Factors...)
					next = append(next, Monomial{Factors: fs})
				}
			}
			out = next
		}
		return out
	default:
		return []Monomial{{Factors: []algebra.Term{t}}}
	}
}

// Simplify expands t and simplifies every monomial; bound reports whether a
// variable is externally bound (event parameter or output group variable)
// and therefore not eliminable. Zero monomials are dropped; an empty result
// means t simplified to zero.
func Simplify(t algebra.Term, bound func(algebra.Var) bool) []Monomial {
	var out []Monomial
	for _, m := range Expand(t) {
		sm, zero := SimplifyMonomial(m, bound)
		if !zero {
			out = append(out, sm)
		}
	}
	return out
}

// SimplifyMonomial applies the rule set to one monomial until fixpoint.
// The second result reports annihilation (the monomial is identically 0).
func SimplifyMonomial(m Monomial, bound func(algebra.Var) bool) (Monomial, bool) {
	factors := make([]algebra.Term, 0, len(m.Factors))
	for _, f := range m.Factors {
		factors = splitValFactor(factors, f)
	}
	for {
		changed := false
		// Pass 1: local folding.
		next := factors[:0]
		coef := 1.0
		coefInt := true
		nConsts := 0
		for _, f := range factors {
			f = foldFactor(f)
			switch f := f.(type) {
			case *algebra.Val:
				if c, ok := algebra.ConstOf(f); ok {
					if !c.Kind().Numeric() {
						// Non-numeric scalar factor: a type error upstream;
						// keep it so evaluation surfaces the problem.
						next = append(next, f)
						continue
					}
					if c.Float() == 0 {
						return Monomial{}, true
					}
					nConsts++
					coef *= c.Float()
					if c.Kind() != types.KindInt {
						coefInt = false
					}
					continue
				}
				next = append(next, f)
			case *algebra.Cmp:
				l, lok := constOfVal(f.L)
				r, rok := constOfVal(f.R)
				if lok && rok {
					changed = true
					if f.Op.Eval(l, r) {
						continue // ×1
					}
					return Monomial{}, true
				}
				if f.Op == algebra.CmpEq && sameVar(f.L, f.R) {
					changed = true
					continue
				}
				if f.Op == algebra.CmpNeq && sameVar(f.L, f.R) {
					return Monomial{}, true
				}
				next = append(next, f)
			default:
				next = append(next, f)
			}
		}
		factors = next
		if coef != 1 {
			var cv types.Value
			if coefInt {
				cv = types.NewInt(int64(coef))
			} else {
				cv = types.NewFloat(coef)
			}
			factors = append(factors, algebra.ConstVal(cv))
			if nConsts > 1 {
				changed = true // merged several constants into one
			}
		} else if nConsts > 0 {
			changed = true // dropped unit constant(s)
		}

		// Pass 2: equality propagation and lift elimination.
		if propagateOnce(&factors, bound) {
			changed = true
		}
		if !changed {
			return Monomial{Factors: factors}, false
		}
	}
}

// propagateOnce applies at most one variable-eliminating rewrite.
func propagateOnce(factors *[]algebra.Term, bound func(algebra.Var) bool) bool {
	fs := *factors
	for i, f := range fs {
		switch f := f.(type) {
		case *algebra.Cmp:
			if f.Op != algebra.CmpEq {
				continue
			}
			lv, lIsVar := f.L.(*algebra.VVar)
			rv, rIsVar := f.R.(*algebra.VVar)
			switch {
			case lIsVar && rIsVar:
				// [x = y]: rename an eliminable side to the other.
				var from, to algebra.Var
				if !bound(lv.Name) {
					from, to = lv.Name, rv.Name
				} else if !bound(rv.Name) {
					from, to = rv.Name, lv.Name
				} else {
					continue
				}
				*factors = renameAll(removeAt(fs, i), from, to)
				return true
			case lIsVar || rIsVar:
				// [x = e] with constant-or-bound e: substitute the value of
				// e for x if x is eliminable and never used positionally.
				var x algebra.Var
				var e algebra.ValExpr
				if lIsVar {
					x, e = lv.Name, f.R
				} else {
					x, e = rv.Name, f.L
				}
				if bound(x) || !valVarsBound(e, bound, x) {
					continue
				}
				rest := removeAt(fs, i)
				if usedPositionally(rest, x) {
					continue
				}
				*factors = substValAll(rest, x, e)
				return true
			}
		case *algebra.Lift:
			// [x := e] where x is eliminable and unused elsewhere sums out
			// to 1 (a single binding exists).
			if bound(f.Var) {
				continue
			}
			rest := removeAt(fs, i)
			if varUsed(rest, f.Var) {
				continue
			}
			*factors = rest
			return true
		}
	}
	return false
}

// splitValFactor appends f to fs, splitting multiplicative scalar factors
// into their operands: the paper's factorization rule sum(a·D) = a·sum(D)
// relies on a and D being separate factors so that materialization can put
// them on opposite sides of the map boundary.
func splitValFactor(fs []algebra.Term, f algebra.Term) []algebra.Term {
	v, ok := f.(*algebra.Val)
	if !ok {
		return append(fs, f)
	}
	if a, ok := v.Expr.(*algebra.VArith); ok && a.Op == '*' {
		fs = splitValFactor(fs, &algebra.Val{Expr: a.L})
		return splitValFactor(fs, &algebra.Val{Expr: a.R})
	}
	return append(fs, f)
}

// foldFactor folds constants inside a factor's scalar expressions.
func foldFactor(t algebra.Term) algebra.Term {
	switch t := t.(type) {
	case *algebra.Val:
		return &algebra.Val{Expr: FoldVal(t.Expr)}
	case *algebra.Cmp:
		return &algebra.Cmp{Op: t.Op, L: FoldVal(t.L), R: FoldVal(t.R)}
	case *algebra.Lift:
		return &algebra.Lift{Var: t.Var, Expr: FoldVal(t.Expr)}
	default:
		return t
	}
}

// FoldVal folds constant arithmetic and algebraic units in a scalar
// expression (0+x, x·1, x−0, x/1, 0·x, 0/x).
func FoldVal(e algebra.ValExpr) algebra.ValExpr {
	a, ok := e.(*algebra.VArith)
	if !ok {
		return e
	}
	l, r := FoldVal(a.L), FoldVal(a.R)
	lc, lok := constOfVal(l)
	rc, rok := constOfVal(r)
	if lok && rok {
		var v types.Value
		switch a.Op {
		case '+':
			v = types.Add(lc, rc)
		case '-':
			v = types.Sub(lc, rc)
		case '*':
			v = types.Mul(lc, rc)
		case '/':
			v = types.Div(lc, rc)
		}
		if !v.IsNull() {
			return &algebra.VConst{Value: v}
		}
		return &algebra.VArith{Op: a.Op, L: l, R: r}
	}
	isNum := func(v types.Value, f float64) bool { return v.Kind().Numeric() && v.Float() == f }
	switch a.Op {
	case '+':
		if lok && isNum(lc, 0) {
			return r
		}
		if rok && isNum(rc, 0) {
			return l
		}
	case '-':
		if rok && isNum(rc, 0) {
			return l
		}
	case '*':
		if lok && isNum(lc, 1) {
			return r
		}
		if rok && isNum(rc, 1) {
			return l
		}
		if (lok && isNum(lc, 0)) || (rok && isNum(rc, 0)) {
			return &algebra.VConst{Value: types.NewInt(0)}
		}
	case '/':
		if rok && isNum(rc, 1) {
			return l
		}
		if lok && isNum(lc, 0) {
			return &algebra.VConst{Value: types.NewInt(0)}
		}
	}
	return &algebra.VArith{Op: a.Op, L: l, R: r}
}

// --- helpers ---

func constOfVal(e algebra.ValExpr) (types.Value, bool) {
	c, ok := e.(*algebra.VConst)
	if !ok {
		return types.Null, false
	}
	return c.Value, true
}

func sameVar(l, r algebra.ValExpr) bool {
	lv, lok := l.(*algebra.VVar)
	rv, rok := r.(*algebra.VVar)
	return lok && rok && lv.Name == rv.Name
}

func removeAt(fs []algebra.Term, i int) []algebra.Term {
	out := make([]algebra.Term, 0, len(fs)-1)
	out = append(out, fs[:i]...)
	out = append(out, fs[i+1:]...)
	return out
}

func renameAll(fs []algebra.Term, from, to algebra.Var) []algebra.Term {
	s := map[algebra.Var]algebra.Var{from: to}
	out := make([]algebra.Term, len(fs))
	for i, f := range fs {
		out[i] = algebra.Rename(f, s)
	}
	return out
}

// valVarsBound reports whether every variable of e (other than skip) is
// externally bound, making e safe to substitute.
func valVarsBound(e algebra.ValExpr, bound func(algebra.Var) bool, skip algebra.Var) bool {
	for _, v := range algebra.FreeVars(&algebra.Val{Expr: e}) {
		if v == skip {
			return false // self-referential equality; leave it alone
		}
		if !bound(v) {
			return false
		}
	}
	return true
}

// usedPositionally reports whether x appears in a position that requires a
// variable (relation columns, map keys, AggSum group vars, lift targets) —
// places where a value expression cannot be substituted.
func usedPositionally(fs []algebra.Term, x algebra.Var) bool {
	for _, f := range fs {
		switch f := f.(type) {
		case *algebra.Rel:
			for _, v := range f.Vars {
				if v == x {
					return true
				}
			}
		case *algebra.MapRef:
			for _, v := range f.Keys {
				if v == x {
					return true
				}
			}
		case *algebra.AggSum:
			if algebra.FreeVarSet(f)[x] {
				return true
			}
		case *algebra.Exists, *algebra.ExistsDelta:
			// Exists keys are map-lookup positions after materialization;
			// substitution cannot descend into the opaque body either.
			if algebra.FreeVarSet(f)[x] {
				return true
			}
		case *algebra.Lift:
			if f.Var == x {
				return true
			}
		}
	}
	return false
}

func varUsed(fs []algebra.Term, x algebra.Var) bool {
	for _, f := range fs {
		if algebra.FreeVarSet(f)[x] {
			return true
		}
	}
	return false
}

// substValAll substitutes value expression e for variable x in scalar
// positions (Val, Cmp, Lift expressions). Callers must have established
// via usedPositionally that x has no positional uses.
func substValAll(fs []algebra.Term, x algebra.Var, e algebra.ValExpr) []algebra.Term {
	out := make([]algebra.Term, len(fs))
	for i, f := range fs {
		out[i] = substVal(f, x, e)
	}
	return out
}

func substVal(t algebra.Term, x algebra.Var, e algebra.ValExpr) algebra.Term {
	switch t := t.(type) {
	case *algebra.Val:
		return &algebra.Val{Expr: substValExpr(t.Expr, x, e)}
	case *algebra.Cmp:
		return &algebra.Cmp{Op: t.Op, L: substValExpr(t.L, x, e), R: substValExpr(t.R, x, e)}
	case *algebra.Lift:
		return &algebra.Lift{Var: t.Var, Expr: substValExpr(t.Expr, x, e)}
	default:
		return t
	}
}

func substValExpr(v algebra.ValExpr, x algebra.Var, e algebra.ValExpr) algebra.ValExpr {
	switch v := v.(type) {
	case *algebra.VVar:
		if v.Name == x {
			return e
		}
		return v
	case *algebra.VArith:
		return &algebra.VArith{Op: v.Op, L: substValExpr(v.L, x, e), R: substValExpr(v.R, x, e)}
	default:
		return v
	}
}
