package dbtoaster_test

import (
	"strings"
	"testing"

	"dbtoaster"
	"dbtoaster/internal/bakeoff"
	"dbtoaster/internal/engine"
	"dbtoaster/internal/native"
	"dbtoaster/internal/schema"
	"dbtoaster/internal/server"
)

// unsupportedStatements sweeps the SQL surface's documented edges: every
// entry must produce a structured error naming the offending clause —
// never a panic — from each user-facing compile path (the embedded
// dbtoaster facade, the dbtserver constructor, and the bakeoff profiler).
var unsupportedStatements = []struct {
	name, sql, wantErr string
}{
	{"right join",
		"select sum(A) from R right join S on R.B = S.B",
		"RIGHT OUTER JOIN is not supported"},
	{"full join",
		"select sum(A) from R full outer join S on R.B = S.B",
		"FULL OUTER JOIN is not supported"},
	{"order by",
		"select sum(A) from R order by A",
		"ORDER is not supported for standing queries"},
	{"distinct",
		"select distinct B from R",
		"DISTINCT is not supported for standing queries"},
	{"star outside exists",
		"select * from R",
		"SELECT * is only supported inside EXISTS subqueries"},
	{"exists in select list",
		"select exists (select * from S) from R",
		"only supported in WHERE, not in the SELECT list"},
	{"in predicate in select list",
		"select A in (select B from S) from R",
		"only supported in WHERE, not in the SELECT list"},
	{"exists in having",
		"select B, sum(A) from R group by B having exists (select * from S)",
		"only supported in WHERE, not in HAVING"},
	{"exists over a join",
		"select sum(A) from R where exists (select * from S, T where S.C = T.C)",
		"EXISTS subquery supports exactly one FROM relation"},
	{"exists with group by",
		"select sum(A) from R where exists (select B from S group by B)",
		"GROUP BY is not supported in an EXISTS subquery"},
	{"nested exists",
		"select sum(A) from R where exists (select * from S where exists (select * from T))",
		"nested subqueries inside an EXISTS subquery are not supported"},
	{"in with two items",
		"select sum(A) from R where B in (select B, C from S)",
		"IN subquery must project exactly one item"},
	{"empty in list",
		"select sum(A) from R where B in ()",
		"empty IN value list"},
	{"group by on nullable side",
		"select S.C, sum(R.A) from R left outer join S on R.B = S.B group by S.C",
		"nullable side of a LEFT OUTER JOIN"},
	{"min over left join",
		"select min(S.C) from R left outer join S on R.B = S.B",
		"MIN with LEFT OUTER JOIN is not supported"},
	{"on references later table",
		"select sum(A) from R join S on S.C = T.C, T",
		"not among the tables joined so far"},
	{"subquery in on condition",
		"select sum(A) from R join S on exists (select * from T)",
		"subqueries are not allowed in ON conditions"},
	{"correlated scalar subquery",
		"select sum(A) from R where A > (select sum(C) from S where S.B = R.B)",
		"correlated subqueries are not supported"},
	{"inequality-correlated subquery",
		"select sum(A) from R where B in (select B from S where S.C > R.A)",
		"is not derivable"},
}

// compilePaths are the user-facing entry points every statement is swept
// through: dbtoaster's embedded Compile, dbtserver's constructor, and the
// bakeoff's compile profiler.
func compilePaths(cat *schema.Catalog, pub *dbtoaster.Catalog) map[string]func(string) error {
	return map[string]func(string) error{
		"dbtoaster": func(src string) error {
			_, err := dbtoaster.Compile(src, pub)
			return err
		},
		"dbtserver": func(src string) error {
			_, err := server.New(src, cat)
			return err
		},
		"bakeoff": func(src string) error {
			_, err := bakeoff.CompileProfile(src, cat)
			return err
		},
		// The native engine's constructor: every corpus statement must fail
		// in the shared front half (parse/analyze/translate), so this path
		// surfaces the same structured error without ever invoking the Go
		// toolchain.
		"dbtoaster-native": func(src string) error {
			q, err := engine.Prepare(src, cat)
			if err != nil {
				return err
			}
			eng, err := engine.NewNativeToaster(q, native.ModeSubprocess)
			if err == nil {
				eng.Close()
			}
			return err
		},
	}
}

func TestUnsupportedSQLStructuredErrors(t *testing.T) {
	cat := schema.NewCatalog(
		schema.NewRelation("R", "A:int", "B:int"),
		schema.NewRelation("S", "B:int", "C:int"),
		schema.NewRelation("T", "C:int", "D:int"),
	)
	pub := dbtoaster.NewCatalog(
		dbtoaster.NewRelation("R", "A:int", "B:int"),
		dbtoaster.NewRelation("S", "B:int", "C:int"),
		dbtoaster.NewRelation("T", "C:int", "D:int"),
	)
	paths := compilePaths(cat, pub)
	for _, tc := range unsupportedStatements {
		for pathName, compile := range paths {
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s/%s: panicked: %v", tc.name, pathName, r)
					}
				}()
				return compile(tc.sql)
			}()
			if err == nil {
				t.Errorf("%s/%s: %q compiled, want error containing %q", tc.name, pathName, tc.sql, tc.wantErr)
				continue
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s/%s: error %q does not name the offending clause (want %q)", tc.name, pathName, err, tc.wantErr)
			}
		}
	}
}
