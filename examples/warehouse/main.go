// Warehouse: the paper's integrated data-warehouse loading and analysis
// application. TPC-H-shaped data streams through the star-schema transform
// into a lineorder fact stream; DBToaster maintains SSB query 4.1 and a
// load monitor continuously DURING loading, instead of loading first and
// querying afterwards. Corrections (retractions of already-loaded facts)
// exercise the arbitrary-lifetime data model.
package main

import (
	"fmt"
	"log"

	"dbtoaster"
	"dbtoaster/internal/tpch"
)

func main() {
	cat := tpch.Catalog()
	profit, err := dbtoaster.Compile(tpch.QuerySSB41, cat)
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := dbtoaster.Compile(tpch.QueryLoadMonitor, cat)
	if err != nil {
		log.Fatal(err)
	}

	gen := tpch.NewGenerator(7, 2)

	// Phase 1: load the dimensions.
	dims := gen.DimensionEvents()
	for _, ev := range dims {
		if err := profit.OnEvent(ev); err != nil {
			log.Fatal(err)
		}
		if err := monitor.OnEvent(ev); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("dimensions loaded: %d rows\n\n", len(dims))

	// Phase 2: stream facts; both views stay current after every delta.
	const facts = 20000
	batch := gen.FactEvents(facts)
	for i, ev := range batch {
		if err := profit.OnEvent(ev); err != nil {
			log.Fatal(err)
		}
		if err := monitor.OnEvent(ev); err != nil {
			log.Fatal(err)
		}
		if (i+1)%5000 == 0 {
			res, err := monitor.Results()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("after %d fact deltas — load monitor (year, rows, revenue):\n%s\n", i+1, res)
		}
	}

	fmt.Println("SSB 4.1 — yearly profit by customer nation (American trade lane):")
	res, err := profit.Results()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	fmt.Printf("\nstate: %d map entries across %d maps for SSB 4.1\n",
		profit.MemEntries(), profit.MapCount())
}
