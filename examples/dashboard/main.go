// Dashboard: several standing queries over one stream, two ways.
//
// First, embedded: CompileMany merges related queries into ONE trigger
// program whose maps are shared (the paper's map sharing, applied across
// queries), so a delta is processed once for all of them. Second,
// standalone: the same queries served over the paper's network protocol,
// with a client registering an extra query at runtime (Figure 1's
// "register query" arrow).
package main

import (
	"fmt"
	"log"

	"dbtoaster"
	"dbtoaster/internal/orderbook"
	"dbtoaster/internal/server"
)

func main() {
	cat := orderbook.Catalog()
	queries := []string{
		orderbook.QueryBidDepth,
		orderbook.QueryBrokerNetBid,   // sum(volume) by broker
		orderbook.QueryBrokerActivity, // count + sum(volume) by broker: shares maps with the above
	}

	// --- Embedded: one merged program for all three queries. ---
	mv, err := dbtoaster.CompileMany(queries, cat)
	if err != nil {
		log.Fatal(err)
	}
	single := 0
	for _, q := range queries {
		v, err := dbtoaster.Compile(q, cat)
		if err != nil {
			log.Fatal(err)
		}
		single += v.MapCount()
	}
	fmt.Printf("map sharing: %d maps merged vs %d compiled separately\n\n", mv.MapCount(), single)

	gen := orderbook.NewGenerator(11, 120)
	for _, ev := range gen.Events(5000) {
		if err := mv.OnEvent(ev); err != nil {
			log.Fatal(err)
		}
	}
	labels := []string{"bid depth", "broker net bid", "broker activity"}
	for i, label := range labels {
		res, err := mv.Results(i)
		if err != nil {
			log.Fatal(err)
		}
		rows := len(res.Rows)
		fmt.Printf("%-16s %d row(s)", label, rows)
		if rows == 1 && len(res.Rows[0]) == 1 {
			fmt.Printf("  value=%s", res.Rows[0][0])
		}
		fmt.Println()
	}

	// --- Standalone: the same view served over TCP. ---
	srv, err := server.New(orderbook.QueryBidDepth, cat)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("\nstandalone server on %s\n", addr)

	client, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	// Register a second standing query at runtime.
	if err := client.Register("asks", orderbook.QueryAskDepth); err != nil {
		log.Fatal(err)
	}
	for _, ev := range orderbook.NewGenerator(12, 40).Events(200) {
		parts := make([]dbtoaster.Value, len(ev.Args))
		copy(parts, ev.Args)
		var sendErr error
		if ev.Op.String() == "+" {
			sendErr = client.Insert(ev.Relation, parts...)
		} else {
			sendErr = client.Delete(ev.Relation, parts...)
		}
		if sendErr != nil {
			log.Fatal(sendErr)
		}
	}
	for _, name := range []string{"main", "asks"} {
		_, rows, err := client.ResultOf(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("server query %-6s → %v\n", name, rows)
	}
	events, entries, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server processed %d deltas, %d map entries\n", events, entries)
}
