// Package examples_test verifies every example builds and runs to
// completion with sensible output.
package examples_test

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, dir string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping toolchain invocation")
	}
	cmd := exec.Command("go", "run", "./examples/"+dir)
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", dir, err, out)
	}
	return string(out)
}

func TestQuickstart(t *testing.T) {
	out := runExample(t, "quickstart")
	if !strings.Contains(out, "ada      | 160  | 2") {
		t.Errorf("quickstart answer wrong:\n%s", out)
	}
	if !strings.Contains(out, "on +orders") {
		t.Errorf("quickstart program missing:\n%s", out)
	}
}

func TestWarehouse(t *testing.T) {
	out := runExample(t, "warehouse")
	for _, want := range []string{"dimensions loaded", "SSB 4.1", "load monitor"} {
		if !strings.Contains(out, want) {
			t.Errorf("warehouse output missing %q:\n%s", want, out)
		}
	}
}

func TestAlgotrading(t *testing.T) {
	out := runExample(t, "algotrading")
	for _, want := range []string{"SOBI", "vwap(corr)", "per-broker", "book sizes"} {
		if !strings.Contains(out, want) {
			t.Errorf("algotrading output missing %q:\n%s", want, out)
		}
	}
}

func TestDashboard(t *testing.T) {
	out := runExample(t, "dashboard")
	for _, want := range []string{"map sharing: 3 maps merged vs 5", "standalone server", "server processed"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard output missing %q:\n%s", want, out)
		}
	}
}

func TestCodegenExample(t *testing.T) {
	out := runExample(t, "codegen")
	for _, want := range []string{"package views", "OnInsertR", "trigger program"} {
		if !strings.Contains(out, want) {
			t.Errorf("codegen output missing %q:\n%s", want, out)
		}
	}
}
