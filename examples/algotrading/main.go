// Algotrading: the paper's financial application. A synthetic NASDAQ
// TotalView-like order-delta stream drives four compiled standing queries
// (bid/ask turnover and depth), from which the SOBI trading signal is
// derived each tick; a treap-based processor maintains the correlated
// VWAP query; and a grouped view watches per-broker activity for
// market-maker detection.
package main

import (
	"fmt"
	"log"

	"dbtoaster"
	"dbtoaster/internal/orderbook"
)

func main() {
	cat := orderbook.Catalog()

	compile := func(sql string) *dbtoaster.View {
		v, err := dbtoaster.Compile(sql, cat)
		if err != nil {
			log.Fatalf("compile %q: %v", sql, err)
		}
		return v
	}
	bidTurnover := compile(orderbook.QueryBidTurnover)
	bidDepth := compile(orderbook.QueryBidDepth)
	askTurnover := compile(orderbook.QueryAskTurnover)
	askDepth := compile(orderbook.QueryAskDepth)
	brokers := compile(orderbook.QueryBrokerActivity)
	vwapThresh := compile(orderbook.QueryVWAPThreshold)
	corrVWAP := orderbook.NewVWAP("bids", 0.25)

	views := []*dbtoaster.View{bidTurnover, bidDepth, askTurnover, askDepth, brokers, vwapThresh}

	scalar := func(v *dbtoaster.View) float64 {
		res, err := v.Results()
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Rows) == 0 {
			return 0
		}
		return res.Rows[0][0].Float()
	}

	gen := orderbook.NewGenerator(42, 200)
	const ticks = 5000
	fmt.Printf("%-8s %-12s %-12s %-14s %-14s\n", "tick", "SOBI", "mid-vwap", "vwap(corr)", "vwap(thresh)")
	for tick := 1; tick <= ticks; tick++ {
		for _, ev := range gen.Next() {
			for _, v := range views {
				if err := v.OnEvent(ev); err != nil {
					log.Fatal(err)
				}
			}
			if err := corrVWAP.OnEvent(ev); err != nil {
				log.Fatal(err)
			}
		}
		if tick%1000 == 0 {
			bt, bd := scalar(bidTurnover), scalar(bidDepth)
			at, ad := scalar(askTurnover), scalar(askDepth)
			signal := orderbook.SOBI(bt, bd, at, ad)
			mid := 0.0
			if bd > 0 && ad > 0 {
				mid = (bt/bd + at/ad) / 2
			}
			fmt.Printf("%-8d %-12.5f %-12.2f %-14.2f %-14.2f\n",
				tick, signal, mid, corrVWAP.Value(), scalar(vwapThresh))
		}
	}

	fmt.Println("\nper-broker bid-book activity (market-maker candidates first):")
	res, err := brokers.Results()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	bids, asks := gen.BookSizes()
	fmt.Printf("\nbook sizes: %d bids, %d asks; view state: %d map entries across %d maps\n",
		bids, asks, vwapThresh.MemEntries(), vwapThresh.MapCount())
}
