// Quickstart: compile a standing aggregate query, stream deltas into it,
// and read the incrementally-maintained answer — DBToaster's embedded mode
// in ~40 lines.
package main

import (
	"fmt"
	"log"

	"dbtoaster"
)

func main() {
	// 1. Declare the base relations (every relation is an update stream).
	cat := dbtoaster.NewCatalog(
		dbtoaster.NewRelation("orders", "customer:string", "amount:float"),
	)

	// 2. Compile the standing query. DBToaster turns it into per-event
	//    trigger functions over in-memory maps — no query plans at runtime.
	view, err := dbtoaster.Compile(
		"select customer, sum(amount), count(*) from orders group by customer", cat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled trigger program:")
	fmt.Println(view.Program())

	// 3. Stream deltas: inserts, and deletes with arbitrary lifetimes.
	deltas := []dbtoaster.Event{
		dbtoaster.Insert("orders", dbtoaster.String("ada"), dbtoaster.Float(120)),
		dbtoaster.Insert("orders", dbtoaster.String("bob"), dbtoaster.Float(80)),
		dbtoaster.Insert("orders", dbtoaster.String("ada"), dbtoaster.Float(40)),
		dbtoaster.Delete("orders", dbtoaster.String("bob"), dbtoaster.Float(80)),
	}
	for _, ev := range deltas {
		if err := view.OnEvent(ev); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Read the maintained view.
	res, err := view.Results()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("current answer:")
	fmt.Print(res)
}
