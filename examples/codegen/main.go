// Codegen: the paper's code-generation path. Compile a standing query and
// emit it as standalone Go source — specialized key types, native maps,
// straight-line trigger functions with zero dependencies — ready to be
// compiled into an application (the paper generates C++ and hands it to
// LLVM; here the Go toolchain plays that role).
package main

import (
	"fmt"
	"log"

	"dbtoaster"
)

func main() {
	cat := dbtoaster.NewCatalog(
		dbtoaster.NewRelation("R", "A:int", "B:int"),
		dbtoaster.NewRelation("S", "B:int", "C:int"),
		dbtoaster.NewRelation("T", "C:int", "D:int"),
	)
	view, err := dbtoaster.Compile(
		"select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C", cat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("// --- trigger program (internal form) ---")
	fmt.Println(view.Program())

	code, err := view.GenerateGo("views")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("// --- generated standalone Go source ---")
	fmt.Print(code)
}
